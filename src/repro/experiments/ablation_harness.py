"""Automated component-importance harness: which part of the stack earns
its keep, measured — not argued.

§3 of the paper claims the HVC stack's value comes from a handful of
load-bearing components: the receiver-side resequencer, steering failback
hysteresis, blackout-suppressed RTOs, SACK recovery, pacing. This harness
turns the claim into a ranking. Each **component** is disabled one at a
time across a set of **scenarios** (each scenario is a workload engineered
to stress one mechanism), the goodput delta against the intact stack is
computed per scenario, and components are ranked by mean relative
degradation. A ``noop`` pseudo-component (disable nothing) anchors the
bottom of the ranking at exactly zero delta — any component ranked above
it measurably matters.

Reading the table: ``delta`` is ``(baseline - ablated) / baseline`` per
scenario — 0.45 means the scenario lost 45% of its goodput without the
component. ``importance`` is the mean delta across all scenarios; the
ranking sorts by it (ties broken by name, so rankings are deterministic
for a given seed).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.bulk import BulkTransfer
from repro.core.api import HvcNetwork
from repro.core.results import ExperimentResult, Table
from repro.errors import ExperimentError
from repro.experiments.cc_matrix import preset_specs
from repro.faults import FaultInjector, FaultSchedule
from repro.net.hvc import fixed_embb_spec, leo_spec
from repro.runner import ParallelRunner, RunUnit
from repro.units import kib, mbps, to_mbps

#: Components the harness can disable. ``noop`` disables nothing — the
#: control every real component must beat to be called load-bearing.
COMPONENTS = (
    "noop",
    "resequencer",
    "hysteresis",
    "blackout-suppression",
    "sack",
    "pacing",
)

#: Scenario catalogue: name -> (preset, steering policy, CCA, fault plan).
#: Each scenario is reordering-/outage-/loss-/burst-sensitive by design so
#: that *some* component has a lever to show up on; the harness still runs
#: every component against every scenario — a component only ranks high if
#: it matters somewhere, and ranks low honestly if it never does.
SCENARIOS: Dict[str, Tuple[str, str, str, str]] = {
    # DChannel sprays a bulk flow across a 50ms and a 5ms path: without
    # the shim resequencer the receiver sees constant reordering.
    "reorder-bulk": ("paper", "dchannel", "cubic", "none"),
    # The eMBB channel cycles blackout -> sick recovery (90% loss burst
    # right after re-up, the radio-reattach pattern): failback hysteresis
    # is exactly what keeps traffic on URLLC through the sick window.
    "outage-flap": ("paper", "dchannel", "cubic", "flap"),
    # Total blackouts (both channels down): RTO suppression preserves
    # cwnd and retransmission budget across the outage.
    "blackout": ("paper", "dchannel", "cubic", "total-blackout"),
    # A single lossy LEO path: SACK is what keeps recovery per-hole
    # instead of dup-ack guesswork and RTO stalls.
    "lossy-bulk": ("lossy", "single", "cubic", "none"),
    # BBRv1 on a single very shallow queue: unpaced, its 2xBDP window
    # arrives in bursts the buffer cannot absorb — pacing is what
    # trickles the same window in at line rate.
    "paced-bulk": ("burst", "single", "bbr", "none"),
}

DEFAULT_DURATION = 8.0
#: Goodput measurement starts here (skip connection startup only — the
#: scenarios' faults start later than this).
MEASURE_START = 0.5


def _scenario_specs(preset: str):
    if preset == "lossy":
        return [leo_spec(loss_rate=0.02)]
    if preset == "burst":
        # ~5 ms of buffer at 30 Mbps: a paced window fits, a burst does not.
        return [fixed_embb_spec(rate_bps=mbps(30), queue_bytes=kib(20))]
    return preset_specs(preset)


def _scenario_faults(plan: str, duration: float) -> Optional[FaultSchedule]:
    if plan == "none":
        return None
    if plan == "flap":
        # eMBB cycles: 0.3 s blackout, then a 0.45 s "sick recovery"
        # (95% loss — the link is up but the radio is still reattaching).
        # The 0.5 s failback hysteresis covers the sick window almost
        # exactly; without it DChannel floods the 95%-loss channel the
        # moment it reports up.
        schedule = FaultSchedule()
        t = 1.0
        while t + 0.75 < duration - 0.3:
            schedule.blackout("embb", t, 0.3)
            schedule.loss_burst("embb", t + 0.3, 0.45, loss=0.95)
            t += 1.2
        return schedule
    if plan == "total-blackout":
        schedule = FaultSchedule()
        for start in (2.0, 5.0):
            if start + 0.8 < duration:
                schedule.correlated(("embb", "urllc"), start, 0.8, kind="outage")
        return schedule
    raise ExperimentError(f"unknown fault plan {plan!r}")


def ablation_unit(
    scenario: str = "reorder-bulk",
    component: str = "noop",
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> dict:
    """One scenario with one component disabled; goodput is the metric."""
    try:
        preset, policy, cc, fault_plan = SCENARIOS[scenario]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ExperimentError(
            f"unknown ablation scenario {scenario!r}; known: {known}"
        ) from None
    if component not in COMPONENTS:
        known = ", ".join(COMPONENTS)
        raise ExperimentError(
            f"unknown ablation component {component!r}; known: {known}"
        ) from None

    steering_kwargs = None
    if component == "hysteresis" and policy == "dchannel":
        steering_kwargs = {"hysteresis": 0.0}
    net = HvcNetwork(
        _scenario_specs(preset),
        steering=policy,
        steering_kwargs=steering_kwargs,
        seed=seed,
        resequence=(component != "resequencer"),
    )
    schedule = _scenario_faults(fault_plan, duration)
    if schedule is not None:
        FaultInjector(net, schedule).arm()
    bulk = BulkTransfer(
        net,
        cc=cc,
        sack=(component != "sack"),
        pacing=(component != "pacing"),
        blackout_suppression=(component != "blackout-suppression"),
    )
    net.run(until=duration)
    return {
        "mbps": to_mbps(bulk.mean_throughput_bps(start=MEASURE_START)),
        "rtx": bulk.pair.client.stats.retransmissions,
        "events": net.sim.events_processed,
    }


def harness_units(
    scenarios: Sequence[str],
    components: Sequence[str],
    duration: float,
    seed: int,
) -> List[RunUnit]:
    return [
        RunUnit.make(
            "ablation-harness",
            "repro.experiments.ablation_harness:ablation_unit",
            seed=seed,
            scenario=scenario,
            component=component,
            duration=duration,
        )
        for component in components
        for scenario in scenarios
    ]


def run_ablation_harness(
    duration: float = DEFAULT_DURATION,
    scenarios: Sequence[str] = tuple(SCENARIOS),
    components: Sequence[str] = COMPONENTS,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    """Disable each component across every scenario; rank by mean delta."""
    if "noop" not in components:
        components = ("noop",) + tuple(components)
    runner = runner if runner is not None else ParallelRunner()
    payloads = runner.run(
        harness_units(scenarios, components, duration, seed)
    )
    grid: Dict[Tuple[str, str], dict] = {}
    index = 0
    for component in components:
        for scenario in scenarios:
            grid[(component, scenario)] = payloads[index]
            index += 1

    result = ExperimentResult(
        name="ablate",
        description=(
            "Component-importance ranking: each stack component disabled "
            "one at a time across reordering/outage/loss/pacing-sensitive "
            "scenarios; components ranked by mean goodput degradation."
        ),
    )
    grid_table = Table(
        ["component"] + [f"{s} (Mbps)" for s in scenarios],
        title="Goodput with component disabled",
    )
    scores: Dict[str, float] = {}
    for component in components:
        deltas = []
        row: List[object] = [component]
        for scenario in scenarios:
            baseline = grid[("noop", scenario)]["mbps"]
            ablated = grid[(component, scenario)]["mbps"]
            row.append(ablated)
            delta = (baseline - ablated) / baseline if baseline > 0 else 0.0
            result.values[f"{component}/{scenario}/mbps"] = round(ablated, 3)
            result.values[f"{component}/{scenario}/delta"] = round(delta, 4)
            deltas.append(delta)
        grid_table.add_row(*row)
        scores[component] = sum(deltas) / len(deltas)
    result.tables.append(grid_table)
    for payload in payloads:
        result.events_processed += payload["events"]

    ranking = sorted(scores, key=lambda name: (-scores[name], name))
    rank_table = Table(
        ["rank", "component", "importance", "worst scenario"],
        title="Component importance (mean relative goodput loss)",
    )
    for position, component in enumerate(ranking, start=1):
        worst = max(
            scenarios,
            key=lambda s: result.values[f"{component}/{s}/delta"],
        )
        rank_table.add_row(
            position,
            component,
            scores[component],
            f"{worst} ({result.values[f'{component}/{worst}/delta']:+.0%})",
        )
        result.values[f"rank/{component}"] = position
        result.values[f"importance/{component}"] = round(scores[component], 4)
    result.tables.append(rank_table)
    result.notes.append(
        "ranking: " + " > ".join(ranking)
        + "  (noop anchors zero; anything above it is load-bearing)"
    )
    return result
