"""Programmatic definitions of every paper figure/table + ablations.

Each experiment is a function returning an
:class:`~repro.core.results.ExperimentResult`; the benchmarks in
``benchmarks/`` call these and print the rendered output, and
``python -m repro <name>`` runs them from the CLI.

| id       | paper artifact                 | function                  |
|----------|--------------------------------|---------------------------|
| fig1a    | Fig. 1a CCA throughputs        | :func:`run_fig1a`         |
| fig1b    | Fig. 1b BBR RTT timeline       | :func:`run_fig1b`         |
| fig2     | Fig. 2 video latency/SSIM CDFs | :func:`run_fig2`          |
| table1   | Table 1 web PLT                | :func:`run_table1`        |
| ab-cc    | §3.2 HVC-aware CC ablation     | :func:`run_cc_ablation`   |
| ab-ack   | §3.2 transport steering        | :func:`run_ack_ablation`  |
| ab-mlo   | §2.2 MLO replication           | :func:`run_mlo_ablation`  |
| ab-cost  | §3.1 latency-vs-cost           | :func:`run_cost_ablation` |
| ab-mp    | §4 multipath subflow design    | :func:`run_multipath_ablation` |
| faults   | §3.2 outage resilience sweep   | :func:`run_faults`        |
| resilience| recovery-SLO scorecard        | :func:`run_resilience`    |
| fleet    | §4 fleet-scale multi-tenancy   | :func:`run_fleet`         |
| cc-matrix| CCA coexistence fairness matrix| :func:`run_cc_matrix`     |
| ablate   | component-importance ranking   | :func:`run_ablation_harness` |
"""

from repro.experiments.fig1 import run_fig1a, run_fig1b
from repro.experiments.faults import run_faults
from repro.experiments.fig2 import run_fig2
from repro.experiments.table1 import run_table1
from repro.experiments.ablations import (
    run_ack_ablation,
    run_cc_ablation,
    run_cost_ablation,
    run_mlo_ablation,
    run_multipath_ablation,
    run_resequencer_ablation,
    run_tsn_ablation,
)
from repro.experiments.ablation_harness import run_ablation_harness
from repro.experiments.baselines import run_baselines
from repro.experiments.cc_matrix import run_cc_matrix
from repro.experiments.fleet import run_fleet
from repro.experiments.resilience import run_resilience
from repro.experiments.sensitivity import (
    run_decode_wait_sweep,
    run_threshold_sweep,
    run_urllc_bandwidth_sweep,
    run_urllc_rtt_sweep,
)

EXPERIMENTS = {
    "fig1a": run_fig1a,
    "fig1b": run_fig1b,
    "fig2": run_fig2,
    "table1": run_table1,
    "ab-cc": run_cc_ablation,
    "ab-ack": run_ack_ablation,
    "ab-mlo": run_mlo_ablation,
    "ab-cost": run_cost_ablation,
    "ab-mp": run_multipath_ablation,
    "ab-reseq": run_resequencer_ablation,
    "ab-tsn": run_tsn_ablation,
    "faults": run_faults,
    "resilience": run_resilience,
    "fleet": run_fleet,
    "baselines": run_baselines,
    "cc-matrix": run_cc_matrix,
    "ablate": run_ablation_harness,
    "sweep-urllc-bw": run_urllc_bandwidth_sweep,
    "sweep-threshold": run_threshold_sweep,
    "sweep-urllc-rtt": run_urllc_rtt_sweep,
    "sweep-decode-wait": run_decode_wait_sweep,
}

__all__ = [
    "EXPERIMENTS",
    "run_fig1a",
    "run_fig1b",
    "run_fig2",
    "run_table1",
    "run_cc_ablation",
    "run_ack_ablation",
    "run_mlo_ablation",
    "run_cost_ablation",
    "run_multipath_ablation",
    "run_resequencer_ablation",
    "run_tsn_ablation",
    "run_ablation_harness",
    "run_baselines",
    "run_cc_matrix",
    "run_faults",
    "run_fleet",
    "run_resilience",
    "run_urllc_bandwidth_sweep",
    "run_threshold_sweep",
    "run_urllc_rtt_sweep",
    "run_decode_wait_sweep",
]
