"""Figure 1: delay-based congestion control vs DChannel steering.

Setup (§3.1): two emulated HVCs with a latency–bandwidth trade-off —
eMBB at 50 ms RTT / 60 Mbps (5G Lowband under movement) and URLLC at
5 ms RTT / 2 Mbps — with DChannel steering packets between them.

* **Fig. 1a** — average throughput of CUBIC, BBR, Vegas and PCC Vivace
  over a long bulk transfer. Paper: 60 / 26.5 / 2.73 / 1.49 Mbps — the
  loss-based CCA fills the pipe, every delay-dependent CCA collapses.
* **Fig. 1b** — the RTT samples BBR observes over time: bimodal, with the
  min-RTT probe visible near the 10 s mark.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.bulk import BulkTransfer
from repro.core.api import HvcNetwork
from repro.core.results import ExperimentResult, PaperComparison, SeriesSet, Table
from repro.net.hvc import fixed_embb_spec, urllc_spec
from repro.runner import ParallelRunner, RunUnit
from repro.units import to_mbps, to_ms

#: Paper-reported mean throughputs (Mbps) on this setup.
PAPER_THROUGHPUT_MBPS = {
    "cubic": 60.0,
    "bbr": 26.5,
    "vegas": 2.73,
    "vivace": 1.49,
}

DEFAULT_CCAS = ("cubic", "bbr", "vegas", "vivace")
DEFAULT_DURATION = 60.0


def _fig1_network(steering: str = "dchannel", seed: int = 0) -> HvcNetwork:
    return HvcNetwork(
        [fixed_embb_spec(), urllc_spec()], steering=steering, seed=seed
    )


def run_single_cca(
    cc: str,
    duration: float = DEFAULT_DURATION,
    steering: str = "dchannel",
    seed: int = 0,
    obs=None,
) -> BulkTransfer:
    """One Fig. 1 bulk flow; returns the finished transfer for inspection.

    Pass an :class:`repro.obs.Observability` to instrument the run (it is
    attached before the connection opens, so transport probes engage).
    """
    net = _fig1_network(steering=steering, seed=seed)
    if obs is not None:
        net.attach_obs(obs)
    bulk = BulkTransfer(net, cc=cc)
    net.run(until=duration)
    return bulk


def fig1a_unit(
    cc: str = "cubic",
    duration: float = DEFAULT_DURATION,
    steering: str = "dchannel",
    seed: int = 0,
    trace_dir: Optional[str] = None,
) -> dict:
    """One Fig. 1 bulk flow reduced to a picklable payload (runner unit)."""
    obs = _unit_obs(trace_dir)
    bulk = run_single_cca(cc, duration=duration, steering=steering, seed=seed, obs=obs)
    payload = {
        "mbps": to_mbps(bulk.mean_throughput_bps(start=0.0, end=duration)),
        "series": [
            (t, to_mbps(r)) for t, r in bulk.throughput_series(interval=1.0)
        ],
        "events": bulk.net.sim.events_processed,
    }
    if obs is not None:
        payload["trace"] = _export_trace(obs, trace_dir, f"fig1a-{cc}")
    return payload


def _unit_obs(trace_dir: Optional[str]):
    """A tracing-enabled Observability when a trace directory is given."""
    if trace_dir is None:
        return None
    from repro.obs import Observability

    return Observability(tracing=True)


def _export_trace(obs, trace_dir: str, name: str) -> str:
    import os

    path = os.path.join(trace_dir, f"{name}.jsonl")
    obs.export_jsonl(path)
    return path


def fig1a_units(
    ccas: Sequence[str],
    duration: float,
    seed: int,
    steering: str = "dchannel",
    trace_dir: Optional[str] = None,
) -> List[RunUnit]:
    """Declare Fig. 1a's per-CCA runs (shared with the ab-cc ablation)."""
    extra = {} if trace_dir is None else {"trace_dir": trace_dir}
    return [
        RunUnit.make(
            "fig1-cca",
            "repro.experiments.fig1:fig1a_unit",
            seed=seed,
            cc=cc,
            duration=duration,
            steering=steering,
            **extra,
        )
        for cc in ccas
    ]


def run_fig1a(
    duration: float = DEFAULT_DURATION,
    ccas: Sequence[str] = DEFAULT_CCAS,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
    trace_dir: Optional[str] = None,
) -> ExperimentResult:
    """Regenerate Fig. 1a: throughput per CCA under DChannel steering."""
    runner = runner if runner is not None else ParallelRunner()
    result = ExperimentResult(
        name="fig1a",
        description=(
            "Throughput achieved by CCAs with DChannel on two paths with a "
            "latency-bandwidth trade-off (eMBB 50ms/60Mbps + URLLC 5ms/2Mbps)."
        ),
    )
    table = Table(["CCA", "throughput (Mbps)", "paper (Mbps)"], title="Fig. 1a")
    series = SeriesSet(
        title="Fig. 1a throughput over time", x_label="s", y_label="Mbps"
    )
    payloads = runner.run(fig1a_units(ccas, duration, seed, trace_dir=trace_dir))
    for cc, payload in zip(ccas, payloads):
        mbps = payload["mbps"]
        result.values[cc] = mbps
        result.events_processed += payload["events"]
        if "trace" in payload:
            result.artifacts[f"trace:{cc}"] = payload["trace"]
        paper = PAPER_THROUGHPUT_MBPS.get(cc)
        table.add_row(cc, mbps, paper if paper is not None else "-")
        if paper is not None:
            result.comparisons.append(
                PaperComparison(f"{cc} throughput", paper, round(mbps, 2), " Mbps")
            )
        series.add(cc, [(t, r) for t, r in payload["series"]])
    result.tables.append(table)
    result.series.append(series)
    ordering = sorted(result.values, key=result.values.get, reverse=True)
    result.notes.append(
        "shape check: expected cubic > bbr > vegas >= vivace; measured "
        + " > ".join(ordering)
    )
    return result


def fig1b_unit(
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
    trace_dir: Optional[str] = None,
) -> dict:
    """BBR's RTT samples as picklable tuples (runner unit)."""
    obs = _unit_obs(trace_dir)
    bulk = run_single_cca("bbr", duration=duration, seed=seed, obs=obs)
    payload = {
        "records": [
            (r.time, r.rtt, r.data_channel, r.ack_channel)
            for r in bulk.rtt_records()
        ],
        "events": bulk.net.sim.events_processed,
    }
    if obs is not None:
        payload["trace"] = _export_trace(obs, trace_dir, "fig1b-bbr")
    return payload


class _RecordView:
    """Tuple-backed stand-in for RttRecord after a runner round-trip."""

    __slots__ = ("time", "rtt", "data_channel", "ack_channel")

    def __init__(self, row: Tuple[float, float, int, int]) -> None:
        self.time, self.rtt, self.data_channel, self.ack_channel = row


def run_fig1b(
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
    trace_dir: Optional[str] = None,
) -> ExperimentResult:
    """Regenerate Fig. 1b: packet RTTs observed by BBR under steering."""
    runner = runner if runner is not None else ParallelRunner()
    extra = {} if trace_dir is None else {"trace_dir": trace_dir}
    payload = runner.run_one(
        RunUnit.make(
            "fig1b",
            "repro.experiments.fig1:fig1b_unit",
            seed=seed,
            duration=duration,
            **extra,
        )
    )
    records = [_RecordView(row) for row in payload["records"]]
    result = ExperimentResult(
        name="fig1b",
        description="Packet RTTs observed by BBR when using DChannel.",
        events_processed=payload["events"],
    )
    if "trace" in payload:
        result.artifacts["trace:bbr"] = payload["trace"]
    series = SeriesSet(title="Fig. 1b BBR RTT samples", x_label="s", y_label="ms")
    series.add("rtt", [(r.time, to_ms(r.rtt)) for r in records])
    result.series.append(series)

    rtts_ms = [to_ms(r.rtt) for r in records]
    result.values["samples"] = len(rtts_ms)
    result.values["min_rtt_ms"] = min(rtts_ms)
    result.values["max_rtt_ms"] = max(rtts_ms)

    # The confusion mechanism, made explicit: RTT samples split into modes
    # by which channel the *data* took (the ACK usually rides URLLC either
    # way). Neither mode reflects the eMBB path's true 50 ms propagation
    # RTT, so BBR's min-RTT filter latches far below it and the BDP —
    # hence throughput — is underestimated (Fig. 1a).
    by_data_channel = {}
    for record in records:
        by_data_channel.setdefault(record.data_channel, []).append(to_ms(record.rtt))
    for channel, samples in sorted(by_data_channel.items()):
        ordered = sorted(samples)
        median = ordered[len(ordered) // 2]
        result.values[f"data_ch{channel}_samples"] = len(samples)
        result.values[f"data_ch{channel}_median_ms"] = median
        result.notes.append(
            f"data on channel {channel}: {len(samples)} samples, "
            f"median {median:.1f} ms (range {min(samples):.1f}–{max(samples):.1f})"
        )
    cross = [r for r in records if r.data_channel != r.ack_channel]
    result.values["cross_channel_samples"] = len(cross)
    result.notes.append(
        f"min RTT sample {min(rtts_ms):.1f} ms vs eMBB propagation RTT 50 ms — "
        "the min-RTT poisoning behind Fig. 1a's BBR collapse"
    )
    return result
