"""Sensitivity sweeps for the design parameters the paper leaves open.

* **URLLC bandwidth** — §2.1 notes URLLC offers 0.4–16 Mbps; how much does
  a web workload actually need before gains saturate? (The answer shapes
  whether operators must provision URLLC generously to make steering pay.)
* **DChannel savings threshold** — the reward/cost hysteresis: too eager
  and data floods the narrow channel, too timid and acceleration is lost.
* **URLLC RTT** — how fast must the "fast" channel be to matter, given
  eMBB's ~50 ms?

Each sweep returns an :class:`~repro.core.results.ExperimentResult` with a
series per metric, printed by ``benchmarks/test_bench_sensitivity.py``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.apps.web.background import BackgroundFlows
from repro.apps.web.browser import load_page
from repro.apps.web.corpus import generate_corpus
from repro.core.api import HvcNetwork
from repro.core.results import ExperimentResult, SeriesSet, Table
from repro.net.channel import ChannelSpec, DirectionSpec
from repro.net.hvc import URLLC_QUEUE_BYTES, traced_embb_spec
from repro.runner import ParallelRunner, RunUnit
from repro.steering.dchannel import DChannelSteerer
from repro.traces.catalog import get_trace
from repro.units import mbps, ms, to_ms

DEFAULT_URLLC_RATES_MBPS = (0.5, 1.0, 2.0, 4.0, 8.0)
DEFAULT_THRESHOLDS_MS = (0.0, 5.0, 15.0, 30.0)
DEFAULT_URLLC_RTTS_MS = (2.0, 5.0, 15.0, 30.0)


def _custom_urllc(rate_bps: float, rtt: float) -> ChannelSpec:
    one_way = rtt / 2.0
    return ChannelSpec(
        name="urllc",
        up=DirectionSpec(rate_bps=rate_bps, delay=one_way, queue_bytes=URLLC_QUEUE_BYTES),
        down=DirectionSpec(rate_bps=rate_bps, delay=one_way, queue_bytes=URLLC_QUEUE_BYTES),
        reliable=True,
    )


def _mean_plt(
    urllc_rate_bps: float,
    urllc_rtt: float,
    steerer,
    pages,
    seed: int,
    with_background: bool = True,
) -> Tuple[float, int]:
    """(mean PLT seconds, kernel events) over ``pages`` for one setting."""
    plts: List[float] = []
    events = 0
    for index, page in enumerate(pages):
        trace = get_trace("5g-lowband-driving", seed=seed + index + 1)
        embb = traced_embb_spec(trace)
        embb.name = "embb"
        net = HvcNetwork(
            [embb, _custom_urllc(urllc_rate_bps, urllc_rtt)],
            steering=steerer,
            seed=seed + index,
        )
        background = BackgroundFlows(net) if with_background else None
        net.run(until=0.2)
        result = load_page(net, page, cc="cubic", timeout=45.0)
        if background is not None:
            background.close()
        plts.append(result.plt if result.complete else 45.0)
        events += net.sim.events_processed
    return sum(plts) / len(plts), events


# ----------------------------------------------------------------------
# Runner units: one sweep point each, reduced to picklable payloads
# ----------------------------------------------------------------------
def bw_sweep_unit(rate_mbps: float = 2.0, page_count: int = 8, seed: int = 0) -> dict:
    pages = generate_corpus(count=page_count, seed=seed)
    plt, events = _mean_plt(mbps(rate_mbps), ms(5), DChannelSteerer(), pages, seed)
    return {"plt_ms": to_ms(plt), "events": events}


def threshold_sweep_unit(
    threshold_ms: float = 0.0, page_count: int = 8, seed: int = 0
) -> dict:
    pages = generate_corpus(count=page_count, seed=seed)
    steerer = DChannelSteerer(savings_threshold=ms(threshold_ms))
    plt, events = _mean_plt(mbps(2), ms(5), steerer, pages, seed)
    return {"plt_ms": to_ms(plt), "events": events}


def rtt_sweep_unit(rtt_ms: float = 5.0, page_count: int = 8, seed: int = 0) -> dict:
    pages = generate_corpus(count=page_count, seed=seed)
    plt, events = _mean_plt(mbps(2), ms(rtt_ms), DChannelSteerer(), pages, seed)
    return {"plt_ms": to_ms(plt), "events": events}


def decode_wait_unit(
    wait_ms: float = 60.0, duration: float = 30.0, seed: int = 0
) -> dict:
    from repro.apps.video.quality import SsimModel
    from repro.apps.video.receiver import VideoReceiver
    from repro.apps.video.sender import VideoSender
    from repro.apps.video.svc import SvcEncoderModel
    from repro.experiments.fig2 import video_network

    net = video_network("5g-lowband-driving", "dchannel", seed=seed)
    encoder = SvcEncoderModel()
    pair = net.open_datagram()
    VideoSender(net.sim, pair.client, encoder, duration=duration)
    receiver = VideoReceiver(
        net.sim, pair.server, encoder, decode_wait=max(ms(wait_ms), 1e-6)
    )
    net.run(until=duration + 2.0)
    ssim_model = SsimModel()
    decoded = [f for f in receiver.frames if f.decoded]
    latencies = sorted(f.latency for f in decoded)
    p95 = latencies[int(len(latencies) * 0.95)] if latencies else 0.0
    mean_ssim = (
        sum(ssim_model.ssim(f.frame_index, f.decoded_layer) for f in decoded)
        / len(decoded)
        if decoded
        else 0.0
    )
    return {
        "p95_ms": to_ms(p95),
        "ssim": mean_ssim,
        "events": net.sim.events_processed,
    }


def run_urllc_bandwidth_sweep(
    rates_mbps: Sequence[float] = DEFAULT_URLLC_RATES_MBPS,
    page_count: int = 8,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    """Web PLT vs URLLC bandwidth under DChannel steering."""
    runner = runner if runner is not None else ParallelRunner()
    result = ExperimentResult(
        name="sweep-urllc-bw",
        description=(
            "Mean web PLT (driving trace, background flows) as URLLC "
            "bandwidth varies, DChannel steering."
        ),
    )
    table = Table(["URLLC Mbps", "mean PLT (ms)"], title="URLLC bandwidth sweep")
    series = SeriesSet(title="PLT vs URLLC bandwidth", x_label="Mbps", y_label="ms")
    points = []
    payloads = runner.run(
        [
            RunUnit.make(
                "sweep-urllc-bw",
                "repro.experiments.sensitivity:bw_sweep_unit",
                seed=seed,
                rate_mbps=rate,
                page_count=page_count,
            )
            for rate in rates_mbps
        ]
    )
    for rate, payload in zip(rates_mbps, payloads):
        plt_ms = payload["plt_ms"]
        result.values[f"{rate}"] = plt_ms
        result.events_processed += payload["events"]
        table.add_row(rate, plt_ms)
        points.append((rate, plt_ms))
    series.add("dchannel", points)
    result.tables.append(table)
    result.series.append(series)
    result.notes.append(
        "finding: with background flows competing, PLT keeps improving past "
        "2 Mbps — the paper's URLLC emulation point is genuinely scarce, "
        "which is why Table 1's flow-priority arbitration matters"
    )
    return result


def run_threshold_sweep(
    thresholds_ms: Sequence[float] = DEFAULT_THRESHOLDS_MS,
    page_count: int = 8,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    """Web PLT vs DChannel's savings threshold (reward hysteresis)."""
    runner = runner if runner is not None else ParallelRunner()
    result = ExperimentResult(
        name="sweep-threshold",
        description="Mean web PLT vs DChannel savings_threshold.",
    )
    table = Table(["threshold (ms)", "mean PLT (ms)"], title="Savings-threshold sweep")
    payloads = runner.run(
        [
            RunUnit.make(
                "sweep-threshold",
                "repro.experiments.sensitivity:threshold_sweep_unit",
                seed=seed,
                threshold_ms=threshold,
                page_count=page_count,
            )
            for threshold in thresholds_ms
        ]
    )
    for threshold, payload in zip(thresholds_ms, payloads):
        result.values[f"{threshold}"] = payload["plt_ms"]
        result.events_processed += payload["events"]
        table.add_row(threshold, payload["plt_ms"])
    result.tables.append(table)
    result.notes.append(
        "finding: PLT is fairly flat across 0-30 ms; a moderate hysteresis "
        "(~15 ms) can help slightly by damping channel flapping"
    )
    return result


def run_decode_wait_sweep(
    waits_ms: Sequence[float] = (0.0, 20.0, 60.0, 200.0, 500.0),
    duration: float = 30.0,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    """The paper's 60 ms decode-wait rule, swept (§3.3).

    "This waiting period helps strike the right balance between latency and
    quality. Without it, the receiver only ever decodes layer 0 ... if it
    waits for too long, then it will get a very delayed higher-quality
    frame." We sweep the wait on the Fig. 2 lowband-driving scenario with
    DChannel steering and report both sides of the trade.
    """
    runner = runner if runner is not None else ParallelRunner()
    result = ExperimentResult(
        name="sweep-decode-wait",
        description=(
            "Frame latency vs quality as the receiver's decode-wait varies "
            "(lowband driving + URLLC, DChannel steering)."
        ),
    )
    table = Table(
        ["wait (ms)", "p95 latency (ms)", "mean SSIM"],
        title="Decode-wait trade-off",
    )
    payloads = runner.run(
        [
            RunUnit.make(
                "sweep-decode-wait",
                "repro.experiments.sensitivity:decode_wait_unit",
                seed=seed,
                wait_ms=wait_ms,
                duration=duration,
            )
            for wait_ms in waits_ms
        ]
    )
    for wait_ms, payload in zip(waits_ms, payloads):
        result.values[f"{wait_ms}:p95_ms"] = payload["p95_ms"]
        result.values[f"{wait_ms}:ssim"] = payload["ssim"]
        result.events_processed += payload["events"]
        table.add_row(wait_ms, payload["p95_ms"], round(payload["ssim"], 3))
    result.tables.append(table)
    result.notes.append(
        "paper's claim: no wait → base-layer-only quality; long waits → "
        "stale frames; ~60 ms balances the two"
    )
    return result


def run_urllc_rtt_sweep(
    rtts_ms: Sequence[float] = DEFAULT_URLLC_RTTS_MS,
    page_count: int = 8,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    """Web PLT vs URLLC RTT: how fast must the fast channel be?"""
    runner = runner if runner is not None else ParallelRunner()
    result = ExperimentResult(
        name="sweep-urllc-rtt",
        description="Mean web PLT as the low-latency channel's RTT varies.",
    )
    table = Table(["URLLC RTT (ms)", "mean PLT (ms)"], title="URLLC RTT sweep")
    payloads = runner.run(
        [
            RunUnit.make(
                "sweep-urllc-rtt",
                "repro.experiments.sensitivity:rtt_sweep_unit",
                seed=seed,
                rtt_ms=rtt,
                page_count=page_count,
            )
            for rtt in rtts_ms
        ]
    )
    for rtt, payload in zip(rtts_ms, payloads):
        result.values[f"{rtt}"] = payload["plt_ms"]
        result.events_processed += payload["events"]
        table.add_row(rtt, payload["plt_ms"])
    result.tables.append(table)
    result.notes.append(
        "expected: gains shrink as the URLLC RTT approaches eMBB's ~50 ms "
        "(the base-delay gap is the steering budget)"
    )
    return result
