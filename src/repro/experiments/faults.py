"""Resilience under faults: the outage sweep (``python -m repro faults``).

The paper's HVCs are radio links — they *will* fail (handovers, blocked
mmWave beams, coverage holes). This family measures what each steering
policy buys when the fat channel goes away: a backlogged flow runs on the
Fig. 1 setup (eMBB 50 ms/60 Mbps + URLLC 5 ms/2 Mbps) while a scripted
eMBB outage of swept length hits mid-transfer, and :mod:`repro.faults`
reports goodput through the fault plus time-to-recover.

The shape this reproduces: ``single`` (one channel, the status quo) stalls
for the outage *plus* an RTO-driven recovery tail; ``dchannel`` and
``redundant`` fail over to URLLC within one RTT (failovers > 0, no
recovery samples) and degrade to the thin channel's rate instead of zero.
That asymmetry — multi-channel steering as a resilience mechanism, not
just a latency optimization — is the §3.2 argument the sweep quantifies.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.apps.bulk import BulkTransfer
from repro.core.api import HvcNetwork
from repro.core.results import ExperimentResult, SeriesSet, Table
from repro.faults import FaultInjector, FaultSchedule, RecoveryTracker
from repro.net.hvc import fixed_embb_spec, urllc_spec
from repro.runner import ParallelRunner, RunUnit
from repro.units import to_mbps

DEFAULT_CCAS = ("cubic", "bbr", "hvc-bbr")
DEFAULT_POLICIES = ("single", "dchannel", "redundant")
#: Swept outage lengths (seconds of eMBB downtime).
DEFAULT_OUTAGES = (0.5, 1.0, 2.0)
DEFAULT_DURATION = 15.0
#: The outage starts here — late enough that every CCA has exited slow
#: start, early enough that the post-outage window is observable.
OUTAGE_START = 5.0
OUTAGE_CHANNEL = "embb"


def outage_schedule(
    outage: float, start: float = OUTAGE_START, channel: str = OUTAGE_CHANNEL
) -> FaultSchedule:
    """The sweep's scripted weather: one outage on the fat channel."""
    return FaultSchedule().outage(channel, start, outage)


def faults_unit(
    cc: str = "cubic",
    steering: str = "dchannel",
    fault_rows: Sequence = (),
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> dict:
    """One (CCA, policy, schedule) resilience run as a picklable payload.

    ``fault_rows`` is :meth:`FaultSchedule.to_params` output — primitive
    tuples, so the unit stays content-addressable in the result cache.
    """
    net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering=steering, seed=seed)
    schedule = FaultSchedule.from_params(fault_rows)
    injector = FaultInjector(net, schedule)
    injector.arm()
    tracker = RecoveryTracker(net)
    bulk = BulkTransfer(net, cc=cc)
    net.run(until=duration)

    fault_start = min((fault.start for fault in schedule), default=duration)
    fault_end = schedule.horizon if len(schedule) else duration
    stats = bulk.pair.client.stats
    payload = {
        "mbps": to_mbps(bulk.mean_throughput_bps(0.0, duration)),
        "mbps_before": to_mbps(bulk.mean_throughput_bps(0.0, fault_start)),
        "mbps_during": to_mbps(bulk.mean_throughput_bps(fault_start, fault_end)),
        "mbps_after": to_mbps(bulk.mean_throughput_bps(fault_end, duration)),
        "series": [(t, to_mbps(r)) for t, r in bulk.throughput_series(interval=0.5)],
        "timeouts": stats.timeouts,
        "blackout_timeouts": stats.blackout_timeouts,
        "recovery_probes": stats.recovery_probes,
        "events": net.sim.events_processed,
    }
    payload.update(tracker.summary())
    return payload


def faults_units(
    outages: Sequence[float],
    ccas: Sequence[str],
    policies: Sequence[str],
    duration: float,
    seed: int,
) -> list:
    """Declare the full sweep's units (ordering: outage, cc, policy)."""
    units = []
    for outage in outages:
        rows = outage_schedule(outage).to_params()
        for cc in ccas:
            for policy in policies:
                units.append(
                    RunUnit.make(
                        "faults-outage",
                        "repro.experiments.faults:faults_unit",
                        seed=seed,
                        cc=cc,
                        steering=policy,
                        fault_rows=rows,
                        duration=duration,
                    )
                )
    return units


def run_faults(
    duration: float = DEFAULT_DURATION,
    outages: Sequence[float] = DEFAULT_OUTAGES,
    ccas: Sequence[str] = DEFAULT_CCAS,
    policies: Sequence[str] = DEFAULT_POLICIES,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    """The resilience sweep: eMBB outage length × CCA × steering policy."""
    runner = runner if runner is not None else ParallelRunner()
    result = ExperimentResult(
        name="faults",
        description=(
            "Goodput and time-to-recover through a scripted eMBB outage "
            f"(start t={OUTAGE_START:g}s) for every CCA x steering policy. "
            "Multi-channel steering turns a dead stop into a degraded rate."
        ),
    )
    table = Table(
        [
            "outage (s)", "CCA", "policy", "Mbps", "during (Mbps)",
            "failovers", "recovery (s)",
        ],
        title="Outage resilience sweep",
    )
    series = SeriesSet(
        title=f"Goodput through a {max(outages):g}s eMBB outage",
        x_label="s",
        y_label="Mbps",
    )
    payloads = runner.run(faults_units(outages, ccas, policies, duration, seed))
    index = 0
    for outage in outages:
        for cc in ccas:
            for policy in policies:
                payload = payloads[index]
                index += 1
                key = f"{cc}/{policy}/outage{outage:g}"
                result.values[f"{key}/mbps"] = payload["mbps"]
                result.values[f"{key}/recovery_max_s"] = payload["recovery_max_s"]
                result.values[f"{key}/failovers"] = payload["failovers"]
                result.events_processed += payload["events"]
                table.add_row(
                    outage,
                    cc,
                    policy,
                    round(payload["mbps"], 2),
                    round(payload["mbps_during"], 2),
                    payload["failovers"],
                    round(payload["recovery_max_s"], 3),
                )
                if outage == max(outages) and cc == ccas[0]:
                    series.add(policy, payload["series"])
    result.tables.append(table)
    result.series.append(series)

    longest = max(outages)
    for cc in ccas:
        single = result.values[f"{cc}/single/outage{longest:g}/recovery_max_s"]
        steered = max(
            result.values[f"{cc}/{policy}/outage{longest:g}/recovery_max_s"]
            for policy in policies
            if policy != "single"
        )
        result.notes.append(
            f"{cc}, {longest:g}s outage: single-channel recovery tail "
            f"{single * 1e3:.0f} ms vs {steered * 1e3:.0f} ms with steering "
            "(failover rides through; no stall to recover from)"
        )
    return result
