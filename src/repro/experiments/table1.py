"""Table 1: web PLT with small background traffic (§3.3).

Setup: pages loaded over HTTP/2-style multiplexing with TCP CUBIC; the
client has two parallel paths — eMBB (5G Lowband stationary / driving
traces) and URLLC (5 ms RTT, 2 Mbps). Two background flows continuously
upload 5 kB and download 10 kB JSON objects. Three steering policies:

* ``embb-only``           — everything on eMBB (baseline column);
* ``dchannel``            — application-blind packet steering;
* ``dchannel+flowprio``   — DChannel + flow priorities: background flows
  are barred from URLLC ("DChannel w. priority" column).

Paper's Table 1 (mean PLT in ms):

| Traces | eMBB-only | DChannel       | DChannel w. priority |
|--------|-----------|----------------|----------------------|
| Stat.  | 1697.3    | 1230.5 (27.5%) | 1154.9 (32%)         |
| Drv.   | 2334.3    | 1474.6 (36.8%) | 1336.8 (42.7%)       |
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.web.background import BackgroundFlows
from repro.apps.web.browser import load_page
from repro.apps.web.corpus import generate_corpus
from repro.core.api import HvcNetwork
from repro.core.metrics import percentile
from repro.core.results import ExperimentResult, PaperComparison, Table
from repro.net.hvc import traced_embb_spec, urllc_spec
from repro.runner import ParallelRunner, RunUnit
from repro.steering.single import SingleChannelSteerer
from repro.traces.catalog import get_trace
from repro.units import to_ms

POLICIES = ("embb-only", "dchannel", "dchannel+flowprio")
TRACES = {
    "stationary": "5g-lowband-stationary",
    "driving": "5g-lowband-driving",
}

PAPER_PLT_MS = {
    ("stationary", "embb-only"): 1697.3,
    ("stationary", "dchannel"): 1230.5,
    ("stationary", "dchannel+flowprio"): 1154.9,
    ("driving", "embb-only"): 2334.3,
    ("driving", "dchannel"): 1474.6,
    ("driving", "dchannel+flowprio"): 1336.8,
}


def _steering_for(policy: str):
    if policy == "embb-only":
        return SingleChannelSteerer(channel_name="embb")
    return policy


def web_network(trace_name: str, policy: str, seed: int = 0) -> HvcNetwork:
    """Build the Table 1 network: traced Lowband eMBB + URLLC."""
    trace = get_trace(trace_name, seed=seed + 1)
    embb = traced_embb_spec(trace)
    embb.name = "embb"
    return HvcNetwork([embb, urllc_spec()], steering=_steering_for(policy), seed=seed)


def run_table1_cell(
    condition: str,
    policy: str,
    pages: Optional[Sequence] = None,
    loads_per_page: int = 1,
    seed: int = 0,
    page_timeout: float = 45.0,
) -> List[float]:
    """Mean-PLT samples (seconds) for one (condition, policy) cell.

    Each page load runs on a fresh network realization (cleared caches and
    re-established connections, as in the paper's methodology) with the two
    background flows running throughout.
    """
    if pages is None:
        pages = generate_corpus(count=30, seed=seed)
    plts, _, _ = _cell_samples(
        condition, pages, policy, loads_per_page, seed, page_timeout
    )
    return plts


def _cell_samples(
    condition: str,
    pages: Sequence,
    policy: str,
    loads_per_page: int,
    seed: int,
    page_timeout: float,
    trace_dir: Optional[str] = None,
) -> "tuple[List[float], int, Optional[str]]":
    """(PLT samples, kernel events, trace path) — the unit's inner loop.

    When ``trace_dir`` is given, only the first network realization (first
    page, first round) is traced: each page load builds a fresh network, so
    one realization already exhibits the cell's full packet lifecycle and a
    full cell would multiply trace volume ~30x for no extra signal.
    """
    plts: List[float] = []
    events = 0
    trace_path: Optional[str] = None
    for load_round in range(loads_per_page):
        for page_index, page in enumerate(pages):
            net = web_network(
                TRACES[condition], policy, seed=seed + 101 * load_round + page_index
            )
            obs = None
            if trace_dir is not None and load_round == 0 and page_index == 0:
                from repro.obs import Observability

                obs = net.attach_obs(Observability(tracing=True))
            background = BackgroundFlows(net)
            net.run(until=0.2)  # let background loops reach steady state
            result = load_page(net, page, cc="cubic", timeout=page_timeout)
            background.close()
            if result.complete:
                plts.append(result.plt)
            else:
                plts.append(page_timeout)  # stalled load counted at timeout
            events += net.sim.events_processed
            if obs is not None:
                import os

                trace_path = os.path.join(
                    trace_dir, f"table1-{condition}-{policy}.jsonl"
                )
                obs.export_jsonl(trace_path)
    return plts, events, trace_path


def table1_cell_unit(
    condition: str = "stationary",
    policy: str = "dchannel",
    page_count: int = 30,
    loads_per_page: int = 1,
    page_timeout: float = 45.0,
    seed: int = 0,
    trace_dir: Optional[str] = None,
) -> dict:
    """One Table 1 cell reduced to picklable samples (runner unit).

    The page corpus is regenerated from ``(page_count, seed)`` inside the
    worker, which is deterministic, so the unit's parameters fully describe
    the run.
    """
    pages = generate_corpus(count=page_count, seed=seed)
    plts, events, trace_path = _cell_samples(
        condition, pages, policy, loads_per_page, seed, page_timeout,
        trace_dir=trace_dir,
    )
    payload = {"plts": plts, "events": events}
    if trace_path is not None:
        payload["trace"] = trace_path
    return payload


def run_table1(
    page_count: int = 30,
    loads_per_page: int = 1,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
    trace_dir: Optional[str] = None,
) -> ExperimentResult:
    """Regenerate Table 1: mean web PLT per trace condition and policy."""
    runner = runner if runner is not None else ParallelRunner()
    conditions = ("stationary", "driving")
    cell_keys = [
        (condition, policy) for condition in conditions for policy in POLICIES
    ]
    extra = {} if trace_dir is None else {"trace_dir": trace_dir}
    payloads = dict(
        zip(
            cell_keys,
            runner.run(
                [
                    RunUnit.make(
                        "table1-cell",
                        "repro.experiments.table1:table1_cell_unit",
                        seed=seed,
                        condition=condition,
                        policy=policy,
                        page_count=page_count,
                        loads_per_page=loads_per_page,
                        **extra,
                    )
                    for condition, policy in cell_keys
                ]
            ),
        )
    )
    result = ExperimentResult(
        name="table1",
        description=(
            "Web PLT (ms) with small background traffic using emulated 5G "
            "lowband eMBB (stationary and driving traces) with URLLC."
        ),
    )
    table = Table(
        ["Traces", "eMBB-only", "DChannel", "DChannel w. priority"],
        title="Table 1 — mean PLT (ms), improvement vs eMBB-only",
    )
    for condition in conditions:
        means: Dict[str, float] = {}
        for policy in POLICIES:
            payload = payloads[(condition, policy)]
            plts = payload["plts"]
            result.events_processed += payload["events"]
            if "trace" in payload:
                result.artifacts[f"trace:{condition}:{policy}"] = payload["trace"]
            mean_ms = to_ms(sum(plts) / len(plts))
            means[policy] = mean_ms
            result.values[f"{condition}:{policy}:mean_plt_ms"] = mean_ms
            result.values[f"{condition}:{policy}:p95_plt_ms"] = to_ms(
                percentile(plts, 95)
            )
            paper = PAPER_PLT_MS[(condition, policy)]
            result.comparisons.append(
                PaperComparison(
                    f"{condition}/{policy} mean PLT", paper, round(mean_ms, 1), " ms"
                )
            )
        baseline = means["embb-only"]
        cells = [
            f"{means['embb-only']:.1f}",
            f"{means['dchannel']:.1f} ({100 * (1 - means['dchannel'] / baseline):.1f}%)",
            f"{means['dchannel+flowprio']:.1f} "
            f"({100 * (1 - means['dchannel+flowprio'] / baseline):.1f}%)",
        ]
        table.add_row(condition.capitalize()[:5] + ".", *cells)
        ordering = sorted(means, key=means.get)
        result.notes.append(
            f"{condition} shape check: expected dchannel+flowprio < dchannel < "
            f"embb-only; measured " + " < ".join(ordering)
        )
    result.tables.append(table)
    return result
