"""The CCA coexistence matrix: who shares, who starves, and where.

§3 argues that heterogeneous virtual channels only *help* applications if
the transport stack — steering, resequencing, per-channel RTT hygiene —
keeps each CCA's control loop honest. This experiment measures the claim
head-on: every unordered CCA pair competes on every channel preset under
every steering policy, and we report

* **Jain fairness index** of the two goodputs — ``(Σx)² / (n·Σx²)``,
  1.0 when the flows split the capacity evenly, 0.5 when one starves;
* **goodput shares** — each flow's fraction of the combined goodput;
* **RTT-unfairness** — ``max(mean RTT) / min(mean RTT)`` across the two
  flows, the latecomer-penalty metric of the RTT-unfairness literature.

The headline cell (pinned by the golden-shape tests): on a shallow
buffer, BBRv2/BBRv2+ vs CUBIC is markedly fairer than BBRv1 vs CUBIC —
v2's 2% loss cap on PROBE_UP (and v2+'s delay-aware probe abort) stops
the probe from bulldozing the loss-based flow, the coexistence fix the
BBRv2 drafts were written for.
"""

from __future__ import annotations

from itertools import combinations_with_replacement
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.bulk import BulkTransfer
from repro.core.api import HvcNetwork
from repro.core.results import ExperimentResult, Table
from repro.errors import ExperimentError
from repro.net.hvc import fiber_wan_spec, fixed_embb_spec, leo_spec, urllc_spec
from repro.runner import ParallelRunner, RunUnit
from repro.units import kib, to_mbps, to_ms

#: The CCAs the full matrix sweeps (21 unordered pairs). BBRv1 stays in so
#: the v1-vs-v2 coexistence delta is measured, not assumed.
MATRIX_CCAS = ("cubic", "reno", "bbr", "bbr2", "bbr2+", "vegas")
#: The reduced set ``--quick`` (CI smoke) sweeps: the headline CCAs only.
QUICK_CCAS = ("cubic", "bbr", "bbr2+")
#: Channel presets: the paper's Fig. 1 emulation, a WAN pair, and a
#: shallow-buffer variant of the paper preset where loss — not delay — is
#: the binding signal (the cell that separates BBRv1 from BBRv2).
PRESETS = ("paper", "shallow", "wan")
#: Steering policies the matrix crosses.
POLICIES = ("dchannel", "min-rtt")

DEFAULT_DURATION = 10.0

#: eMBB buffer for the "shallow" preset: ~16 ms at 60 Mbps, the regime
#: where BBRv1's loss-blind PROBE_BW punishes loss-based competitors.
SHALLOW_EMBB_QUEUE = kib(120)


def preset_specs(preset: str):
    """Channel specs for a named matrix preset."""
    if preset == "paper":
        return [fixed_embb_spec(), urllc_spec()]
    if preset == "shallow":
        return [fixed_embb_spec(queue_bytes=SHALLOW_EMBB_QUEUE), urllc_spec()]
    if preset == "wan":
        return [fiber_wan_spec(), leo_spec()]
    raise ExperimentError(
        f"unknown cc-matrix preset {preset!r}; known: {', '.join(PRESETS)}"
    )


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1/n (one hog) .. 1.0 (perfect sharing)."""
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares <= 0:
        return 1.0  # no flow moved any bytes: vacuously fair
    return (total * total) / (len(values) * squares)


def _mean_rtt(records, start: float) -> Optional[float]:
    samples = [r.rtt for r in records if r.time >= start]
    if not samples:
        return None
    return sum(samples) / len(samples)


def pair_unit(
    cc_a: str = "cubic",
    cc_b: str = "cubic",
    preset: str = "paper",
    steering: str = "dchannel",
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> dict:
    """Two backlogged flows compete; steady-window goodput + RTT each."""
    net = HvcNetwork(preset_specs(preset), steering=steering, seed=seed)
    flow_a = BulkTransfer(net, cc=cc_a)
    flow_b = BulkTransfer(net, cc=cc_b)
    net.run(until=duration)
    # Skip the first quarter: startup transients (slow start, STARTUP
    # overshoot) are not the steady-state sharing being measured.
    start = duration * 0.25
    rtt_a = _mean_rtt(flow_a.rtt_records(), start)
    rtt_b = _mean_rtt(flow_b.rtt_records(), start)
    return {
        "mbps_a": to_mbps(flow_a.mean_throughput_bps(start=start)),
        "mbps_b": to_mbps(flow_b.mean_throughput_bps(start=start)),
        "rtt_a_ms": to_ms(rtt_a) if rtt_a is not None else None,
        "rtt_b_ms": to_ms(rtt_b) if rtt_b is not None else None,
        "events": net.sim.events_processed,
    }


def matrix_cells(
    ccas: Sequence[str] = MATRIX_CCAS,
    presets: Sequence[str] = PRESETS,
    policies: Sequence[str] = POLICIES,
) -> List[Tuple[str, str, str, str]]:
    """Every (preset, policy, cc_a, cc_b) cell, unordered CCA pairs."""
    pairs = list(combinations_with_replacement(ccas, 2))
    return [
        (preset, policy, cc_a, cc_b)
        for preset in presets
        for policy in policies
        for cc_a, cc_b in pairs
    ]


def matrix_units(
    cells: Sequence[Tuple[str, str, str, str]],
    duration: float,
    seed: int,
) -> List[RunUnit]:
    return [
        RunUnit.make(
            "cc-matrix",
            "repro.experiments.cc_matrix:pair_unit",
            seed=seed,
            cc_a=cc_a,
            cc_b=cc_b,
            preset=preset,
            steering=policy,
            duration=duration,
        )
        for preset, policy, cc_a, cc_b in cells
    ]


def rtt_unfairness(rtt_a_ms: Optional[float], rtt_b_ms: Optional[float]) -> Optional[float]:
    """max/min of the two flows' mean RTTs; None when a flow saw no RTT."""
    if not rtt_a_ms or not rtt_b_ms:
        return None
    lo, hi = sorted((rtt_a_ms, rtt_b_ms))
    if lo <= 0:
        return None
    return hi / lo


def run_cc_matrix(
    duration: float = DEFAULT_DURATION,
    ccas: Sequence[str] = MATRIX_CCAS,
    presets: Sequence[str] = PRESETS,
    policies: Sequence[str] = POLICIES,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    """Run the full coexistence matrix and aggregate fairness metrics."""
    runner = runner if runner is not None else ParallelRunner()
    cells = matrix_cells(ccas=ccas, presets=presets, policies=policies)
    payloads = runner.run(matrix_units(cells, duration, seed))

    result = ExperimentResult(
        name="cc-matrix",
        description=(
            "CCA coexistence matrix: Jain fairness, goodput shares and "
            "RTT-unfairness for every CCA pair x channel preset x steering "
            "policy (two competing bulk flows per cell)."
        ),
    )
    table = Table(
        [
            "preset",
            "policy",
            "pair",
            "jain",
            "share A",
            "share B",
            "rtt-unfair",
            "A (Mbps)",
            "B (Mbps)",
        ],
        title="CCA coexistence matrix",
    )
    per_policy_jain: Dict[Tuple[str, str], List[float]] = {}
    for (preset, policy, cc_a, cc_b), payload in zip(cells, payloads):
        mbps_a, mbps_b = payload["mbps_a"], payload["mbps_b"]
        jain = jain_index((mbps_a, mbps_b))
        total = mbps_a + mbps_b
        share_a = mbps_a / total if total > 0 else 0.5
        unfair = rtt_unfairness(payload["rtt_a_ms"], payload["rtt_b_ms"])
        key = f"{preset}/{policy}/{cc_a}|{cc_b}"
        result.values[f"{key}/jain"] = round(jain, 4)
        result.values[f"{key}/share_a"] = round(share_a, 4)
        result.values[f"{key}/mbps_a"] = round(mbps_a, 3)
        result.values[f"{key}/mbps_b"] = round(mbps_b, 3)
        if unfair is not None:
            result.values[f"{key}/rtt_unfairness"] = round(unfair, 3)
        result.events_processed += payload["events"]
        per_policy_jain.setdefault((preset, policy), []).append(jain)
        table.add_row(
            preset,
            policy,
            f"{cc_a} vs {cc_b}",
            jain,
            share_a,
            1.0 - share_a,
            unfair if unfair is not None else "-",
            mbps_a,
            mbps_b,
        )
    result.tables.append(table)

    summary = Table(
        ["preset", "policy", "mean jain", "worst jain"],
        title="Fairness summary (per preset x policy)",
    )
    for (preset, policy), jains in sorted(per_policy_jain.items()):
        mean_jain = sum(jains) / len(jains)
        result.values[f"{preset}/{policy}/mean_jain"] = round(mean_jain, 4)
        summary.add_row(preset, policy, mean_jain, min(jains))
    result.tables.append(summary)

    _headline_notes(result, ccas, presets, policies)
    return result


def _headline_notes(
    result: ExperimentResult,
    ccas: Sequence[str],
    presets: Sequence[str],
    policies: Sequence[str],
) -> None:
    """The v1-vs-v2 coexistence delta, spelled out when measurable."""
    if "bbr" not in ccas or "cubic" not in ccas:
        return
    v2 = "bbr2+" if "bbr2+" in ccas else ("bbr2" if "bbr2" in ccas else None)
    if v2 is None:
        return
    def pair_value(preset: str, policy: str, a: str, b: str) -> Optional[float]:
        return result.values.get(
            f"{preset}/{policy}/{a}|{b}/jain",
            result.values.get(f"{preset}/{policy}/{b}|{a}/jain"),
        )

    for preset in presets:
        for policy in policies:
            v1_jain = pair_value(preset, policy, "bbr", "cubic")
            v2_jain = pair_value(preset, policy, v2, "cubic")
            if v1_jain is None or v2_jain is None:
                continue
            verdict = "improves on" if v2_jain > v1_jain else "trails"
            result.notes.append(
                f"{preset}/{policy}: {v2} vs cubic jain {v2_jain:.3f} "
                f"{verdict} bbr vs cubic ({v1_jain:.3f})"
            )
