"""Figure 2: real-time SVC video under three steering schemes (§3.3).

Setup: VP9-SVC-like stream, 3 layers at 400/4100/7500 kbps, 30 fps, sent
as per-layer messages over UDP; receiver decodes with the 60 ms wait rule.
eMBB is trace-driven (mmWave driving / Lowband driving — the high-variance
mobility traces); URLLC is 5 ms RTT / 2 Mbps.

Schemes compared (paper's Fig. 2 CDFs of frame latency and SSIM):

* ``embb-only``  — everything on eMBB;
* ``dchannel``   — application-blind per-packet steering;
* ``priority``   — cross-layer: layer 0 rides URLLC, layers 1–2 ride eMBB.

Paper headline (mmWave driving, 95th-pct latency): priority 78 ms vs
DChannel 176 ms (2.26×) vs eMBB-only ~2.06 s (26×); SSIM costs 0.002 and
0.068 respectively.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.apps.video.session import VideoSessionResult, run_video_session
from repro.core.api import HvcNetwork
from repro.core.metrics import Cdf
from repro.core.results import ExperimentResult, PaperComparison, SeriesSet, Table
from repro.net.hvc import traced_embb_spec, urllc_spec
from repro.runner import ParallelRunner, RunUnit
from repro.steering.single import SingleChannelSteerer
from repro.traces.catalog import get_trace
from repro.units import to_ms

SCHEMES = ("embb-only", "dchannel", "priority")
TRACES = ("5g-mmwave-driving", "5g-lowband-driving")

#: Paper's mmWave-driving 95th-percentile latencies (ms).
PAPER_P95_LATENCY_MS = {"embb-only": 2058.0, "dchannel": 176.0, "priority": 78.0}
#: Paper's SSIM deltas vs priority steering on mmWave driving.
PAPER_SSIM_DELTA = {"embb-only": 0.068, "dchannel": 0.002}


def _steering_for(scheme: str):
    if scheme == "embb-only":
        return SingleChannelSteerer(channel_name="embb")
    return scheme  # registry name


def video_network(trace_name: str, scheme: str, seed: int = 0) -> HvcNetwork:
    """Build the Fig. 2 network: traced eMBB + URLLC, chosen steering.

    mmWave gets a deeper base-station buffer (buffers scale with the
    multi-hundred-Mbps line rate), which is what turns blockage outages
    into the multi-second delay tail rather than a burst of drops.
    """
    from repro.units import kib

    trace = get_trace(trace_name, seed=seed + 1)
    queue = kib(8192) if "mmwave" in trace_name else None
    if queue is not None:
        embb = traced_embb_spec(trace, queue_bytes=queue)
    else:
        embb = traced_embb_spec(trace)
    embb.name = "embb"  # stable name for the embb-only steerer
    return HvcNetwork([embb, urllc_spec()], steering=_steering_for(scheme), seed=seed)


def run_fig2_cell(
    trace_name: str, scheme: str, duration: float = 60.0, seed: int = 0
) -> VideoSessionResult:
    """One (trace, scheme) cell of Fig. 2."""
    net = video_network(trace_name, scheme, seed=seed)
    return run_video_session(net, duration=duration)


def fig2_cell_unit(
    trace: str = "5g-lowband-driving",
    scheme: str = "dchannel",
    duration: float = 60.0,
    seed: int = 0,
    trace_dir: Optional[str] = None,
) -> dict:
    """One Fig. 2 cell reduced to picklable distributions (runner unit)."""
    net = video_network(trace, scheme, seed=seed)
    obs = None
    if trace_dir is not None:
        from repro.obs import Observability

        obs = net.attach_obs(Observability(tracing=True))
    cell = run_video_session(net, duration=duration)
    payload = {
        "latencies": [f.latency for f in cell.frames if f.decoded],
        "ssims": list(cell.ssim_values),
        "frames": len(cell.frames),
        "events": net.sim.events_processed,
    }
    if obs is not None:
        import os

        path = os.path.join(trace_dir, f"fig2-{trace}-{scheme}.jsonl")
        obs.export_jsonl(path)
        payload["trace"] = path
    return payload


def run_fig2(
    duration: float = 60.0,
    traces=TRACES,
    schemes=SCHEMES,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
    trace_dir: Optional[str] = None,
) -> ExperimentResult:
    """Regenerate Fig. 2: latency and SSIM distributions per scheme."""
    runner = runner if runner is not None else ParallelRunner()
    result = ExperimentResult(
        name="fig2",
        description=(
            "Latency and quality (SSIM) distributions of decoded frames for "
            "various steering algorithms, emulated 5G eMBB (driving traces) "
            "+ URLLC."
        ),
    )
    cells = [(trace_name, scheme) for trace_name in traces for scheme in schemes]
    extra = {} if trace_dir is None else {"trace_dir": trace_dir}
    payloads = runner.run(
        [
            RunUnit.make(
                "fig2-cell",
                "repro.experiments.fig2:fig2_cell_unit",
                seed=seed,
                trace=trace_name,
                scheme=scheme,
                duration=duration,
                **extra,
            )
            for trace_name, scheme in cells
        ]
    )
    by_cell = dict(zip(cells, payloads))
    for trace_name in traces:
        table = Table(
            [
                "scheme",
                "p50 lat (ms)",
                "p95 lat (ms)",
                "max lat (ms)",
                "mean SSIM",
                "frames",
            ],
            title=f"Fig. 2 — {trace_name}",
        )
        latency_series = SeriesSet(
            title=f"latency CDF ({trace_name})", x_label="ms", y_label="P"
        )
        ssim_series = SeriesSet(
            title=f"SSIM CDF ({trace_name})", x_label="ssim", y_label="P"
        )
        for scheme in schemes:
            cell = by_cell[(trace_name, scheme)]
            result.events_processed += cell["events"]
            if "trace" in cell:
                result.artifacts[f"trace:{trace_name}:{scheme}"] = cell["trace"]
            latency = Cdf(cell["latencies"])
            ssim = Cdf(cell["ssims"])
            key = f"{trace_name}:{scheme}"
            result.values[f"{key}:p95_latency_ms"] = to_ms(latency.percentile(95))
            result.values[f"{key}:mean_ssim"] = ssim.mean
            table.add_row(
                scheme,
                to_ms(latency.median),
                to_ms(latency.percentile(95)),
                to_ms(latency.max),
                round(ssim.mean, 3),
                cell["frames"],
            )
            latency_series.add(
                scheme, [(to_ms(v), p) for v, p in latency.points(40)]
            )
            ssim_series.add(scheme, ssim.points(40))
        result.tables.append(table)
        result.series.append(latency_series)
        result.series.append(ssim_series)

        if trace_name == "5g-mmwave-driving":
            for scheme in schemes:
                measured = result.values[f"{trace_name}:{scheme}:p95_latency_ms"]
                result.comparisons.append(
                    PaperComparison(
                        f"{scheme} p95 latency (mmWave drv)",
                        PAPER_P95_LATENCY_MS[scheme],
                        round(measured, 1),
                        " ms",
                    )
                )
            priority_ssim = result.values[f"{trace_name}:priority:mean_ssim"]
            for scheme, paper_delta in PAPER_SSIM_DELTA.items():
                measured_delta = (
                    result.values[f"{trace_name}:{scheme}:mean_ssim"] - priority_ssim
                )
                result.comparisons.append(
                    PaperComparison(
                        f"SSIM delta {scheme} - priority (mmWave drv)",
                        paper_delta,
                        round(measured_delta, 4),
                    )
                )
        p95 = {
            s: result.values[f"{trace_name}:{s}:p95_latency_ms"] for s in schemes
        }
        result.notes.append(
            f"{trace_name} shape check: expected priority < dchannel < embb-only "
            f"at p95; measured "
            + " < ".join(sorted(p95, key=p95.get))
        )
    return result
