"""Ablations for the design choices the paper argues for (§3.2, §2.2, §3.1).

These go beyond the paper's figures: each isolates one claimed mechanism.

* ``ab-cc``   — HVC-aware congestion control (§3.2): BBR / Vegas / Vivace
  with and without per-channel RTT interpretation, on the Fig. 1 setup.
* ``ab-ack``  — transport-layer segment steering (§3.2): request-response
  latency under DChannel vs transport-aware steering (ACK separation +
  tail acceleration), with a fat-ACK variant showing why network-layer
  steering loses the separation.
* ``ab-mlo``  — Wi-Fi 7 MLO replication (§2.2): bandwidth vs reliability.
* ``ab-cost`` — cISP-style latency-vs-cost budgets (§3.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.apps.bulk import BulkTransfer
from repro.core.api import HvcNetwork
from repro.core.metrics import Cdf
from repro.core.results import ExperimentResult, SeriesSet, Table
from repro.net.hvc import (
    cisp_spec,
    fiber_wan_spec,
    fixed_embb_spec,
    urllc_spec,
    wifi_mlo_specs,
    wifi_tsn_spec,
)
from repro.runner import ParallelRunner, RunUnit
from repro.steering.cost import CostAwareSteerer
from repro.steering.redundant import RedundantSteerer
from repro.steering.single import SingleChannelSteerer
from repro.transport import next_flow_id
from repro.transport.connection import Connection
from repro.transport.multipath import MultipathConnection
from repro.units import kb, to_mbps, to_ms

from repro.experiments.fig1 import fig1a_units, run_single_cca


# ----------------------------------------------------------------------
# ab-cc: HVC-aware congestion control rescues delay-based CCAs
# ----------------------------------------------------------------------
def run_cc_ablation(
    duration: float = 30.0,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    """Fig. 1 setup, each delay-based CCA vs its HVC-aware wrapper."""
    runner = runner if runner is not None else ParallelRunner()
    result = ExperimentResult(
        name="ab-cc",
        description=(
            "§3.2 ablation: per-channel RTT interpretation (hvc-* wrapper) "
            "restores throughput that DChannel steering destroys."
        ),
    )
    table = Table(
        ["CCA", "plain (Mbps)", "hvc-aware (Mbps)", "recovery"],
        title="HVC-aware congestion control",
    )
    ccas = ("bbr", "vegas", "vivace")
    # Interleave plain/aware per CCA; the units are the same family as
    # Fig. 1a's, so a fig1a run warms this ablation's cache (and vice versa).
    ordered = [name for cc in ccas for name in (cc, f"hvc-{cc}")]
    payloads = dict(
        zip(ordered, runner.run(fig1a_units(ordered, duration, seed)))
    )
    for cc in ccas:
        plain_mbps = payloads[cc]["mbps"]
        aware_mbps = payloads[f"hvc-{cc}"]["mbps"]
        result.events_processed += (
            payloads[cc]["events"] + payloads[f"hvc-{cc}"]["events"]
        )
        result.values[f"{cc}:plain"] = plain_mbps
        result.values[f"{cc}:aware"] = aware_mbps
        table.add_row(cc, plain_mbps, aware_mbps, f"{aware_mbps / plain_mbps:.1f}x")
    result.tables.append(table)
    result.notes.append(
        "shape check: hvc-aware throughput should exceed plain for every "
        "delay-based CCA"
    )
    return result


# ----------------------------------------------------------------------
# ab-ack: transport-layer segment steering
# ----------------------------------------------------------------------
def _request_response_latencies(
    steering,
    count: int = 40,
    response_bytes: int = kb(30),
    ack_bytes: int = 0,
    background: bool = True,
    seed: int = 0,
) -> Tuple[List[float], int]:
    """Round-trip times of sequential request→response exchanges.

    Returns ``(latencies, kernel_events)``. An optional bulk background
    flow keeps the eMBB queue occupied so control-packet placement matters
    (an idle network hides it).
    """
    net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering=steering, seed=seed)
    if background:
        BulkTransfer(net, cc="cubic")
        net.run(until=1.0)

    latencies: List[float] = []
    flow_id = next_flow_id()
    state = {"started_at": 0.0}

    def on_response(receipt):
        latencies.append(net.now - state["started_at"])
        issue_next()

    client = Connection(
        net.sim, net.client, flow_id, cc="cubic", ack_bytes=ack_bytes,
        on_message=on_response,
    )

    def on_request(receipt):
        server.send_message(response_bytes, message_id=receipt.message_id + 5000)

    server = Connection(
        net.sim, net.server, flow_id, cc="cubic", ack_bytes=ack_bytes,
        on_message=on_request,
    )

    def issue_next():
        if len(latencies) >= count:
            return
        state["started_at"] = net.now
        client.send_message(kb(1), message_id=len(latencies))

    issue_next()
    deadline = net.now + 120.0
    while len(latencies) < count and net.now < deadline and net.sim.pending_events:
        net.run(until=min(net.now + 1.0, deadline))
    return latencies, net.sim.events_processed


def ack_unit(policy: str = "dchannel", ack_bytes: int = 0, seed: int = 0) -> dict:
    """One request-response latency measurement (runner unit)."""
    latencies, events = _request_response_latencies(
        policy, ack_bytes=ack_bytes, seed=seed
    )
    return {"latencies": latencies, "events": events}


def run_ack_ablation(
    seed: int = 0, runner: Optional[ParallelRunner] = None
) -> ExperimentResult:
    """Request-response latency: DChannel vs transport-aware steering."""
    runner = runner if runner is not None else ParallelRunner()
    result = ExperimentResult(
        name="ab-ack",
        description=(
            "§3.2 ablation: ACK separation and end-of-message acceleration "
            "at the transport layer vs network-layer DChannel, under bulk "
            "contention. 'dchannel fat-acks' tacks 600 B of data onto each "
            "ACK, which pushes it off the low-latency channel."
        ),
    )
    table = Table(
        ["steering", "p50 (ms)", "p95 (ms)"],
        title="Request-response latency under contention",
    )
    configs = [
        ("dchannel", "dchannel", 0),
        ("dchannel fat-acks", "dchannel", 600),
        ("transport-aware", "transport-aware", 0),
    ]
    payloads = runner.run(
        [
            RunUnit.make(
                "ab-ack",
                "repro.experiments.ablations:ack_unit",
                seed=seed,
                policy=policy,
                ack_bytes=ack_bytes,
            )
            for _, policy, ack_bytes in configs
        ]
    )
    for (label, _, _), payload in zip(configs, payloads):
        cdf = Cdf(payload["latencies"])
        result.events_processed += payload["events"]
        result.values[f"{label}:p50_ms"] = to_ms(cdf.median)
        result.values[f"{label}:p95_ms"] = to_ms(cdf.percentile(95))
        table.add_row(label, to_ms(cdf.median), to_ms(cdf.percentile(95)))
    result.tables.append(table)
    result.notes.append(
        "shape check: transport-aware <= dchannel <= dchannel fat-acks at p95"
    )
    return result


# ----------------------------------------------------------------------
# ab-mlo: replication trades bandwidth for reliability
# ----------------------------------------------------------------------
#: Steering policies the MLO ablation compares, by picklable key.
MLO_POLICIES = ("single-link", "spray (min-rtt)", "replicate")


def mlo_unit(policy: str = "replicate", duration: float = 20.0, seed: int = 0) -> dict:
    """One MLO delivery/goodput measurement (runner unit)."""
    from repro.sim.timers import PeriodicTimer

    steering = {
        "single-link": lambda: SingleChannelSteerer(index=0),
        "spray (min-rtt)": lambda: "min-rtt",
        "replicate": lambda: RedundantSteerer(mode="all"),
    }[policy]()
    net = HvcNetwork(list(wifi_mlo_specs()), steering=steering, seed=seed)
    received = []
    pair = net.open_datagram(on_server_message=received.append)
    sent = 0
    message_bytes = kb(10)

    def send_burst():
        nonlocal sent
        pair.client.send_message(message_bytes, message_id=sent)
        sent += 1

    timer = PeriodicTimer(net.sim, 0.005, send_burst, start_delay=0.0)
    net.run(until=duration)
    timer.stop()
    net.run(until=duration + 1.0)
    return {
        "delivered": len(received) / max(sent, 1),
        "goodput_mbps": to_mbps(len(received) * message_bytes * 8 / duration),
        "events": net.sim.events_processed,
    }


def run_mlo_ablation(
    duration: float = 20.0,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    """Two lossy Wi-Fi MLO links: replicate vs spray vs single link."""
    runner = runner if runner is not None else ParallelRunner()
    result = ExperimentResult(
        name="ab-mlo",
        description=(
            "§2.2 opportunity: replicating datagrams across both MLO links "
            "sacrifices bandwidth for delivery reliability under bursty loss."
        ),
    )
    table = Table(
        ["policy", "delivered %", "goodput (Mbps)"],
        title="Wi-Fi MLO bandwidth-vs-reliability",
    )
    payloads = runner.run(
        [
            RunUnit.make(
                "ab-mlo",
                "repro.experiments.ablations:mlo_unit",
                seed=seed,
                policy=label,
                duration=duration,
            )
            for label in MLO_POLICIES
        ]
    )
    for label, payload in zip(MLO_POLICIES, payloads):
        result.events_processed += payload["events"]
        result.values[f"{label}:delivered"] = payload["delivered"]
        result.values[f"{label}:goodput_mbps"] = payload["goodput_mbps"]
        table.add_row(
            label, f"{100 * payload['delivered']:.1f}", payload["goodput_mbps"]
        )
    result.tables.append(table)
    result.notes.append(
        "shape check: replicate has the highest delivery rate; spray has the "
        "highest offered-load tolerance (goodput) on clean periods"
    )
    return result


# ----------------------------------------------------------------------
# ab-mp: multipath transport with per-channel subflows (§4 design)
# ----------------------------------------------------------------------
def _multipath_mixed_workload(
    scheduler: str, duration: float = 20.0, seed: int = 0
) -> Tuple[float, List[float], int]:
    """A backlogged bulk connection plus a small-RPC connection, both
    multipath with the given scheduler; returns (bulk goodput bps, rpc
    latencies). The interesting effect is contention: what the bulk
    scheduler does to the URLLC queue determines the RPCs' fate."""
    net = HvcNetwork(
        [fixed_embb_spec(), urllc_spec()], steering="single", seed=seed
    )
    bulk_id = next_flow_id()
    bulk_sender = MultipathConnection(
        net.sim, net.client, bulk_id, cc="cubic", scheduler=scheduler
    )
    MultipathConnection(net.sim, net.server, bulk_id, cc="cubic", scheduler=scheduler)
    bulk_sender.send_message(10**9, message_id=1)  # backlogged

    rpc_latencies: List[float] = []
    sent_at: Dict[int, float] = {}

    def on_message(receipt):
        if receipt.message_id in sent_at:
            rpc_latencies.append(net.now - sent_at[receipt.message_id])

    rpc_id = next_flow_id()
    rpc_sender = MultipathConnection(
        net.sim, net.client, rpc_id, cc="cubic", scheduler=scheduler
    )
    MultipathConnection(
        net.sim, net.server, rpc_id, cc="cubic", scheduler=scheduler,
        on_message=on_message,
    )

    from repro.sim.timers import PeriodicTimer

    state = {"next_id": 0}

    def send_rpc():
        sent_at[state["next_id"]] = net.now
        rpc_sender.send_message(kb(2), message_id=state["next_id"])
        state["next_id"] += 1

    timer = PeriodicTimer(net.sim, 0.25, send_rpc)
    # Slow-start overshoot and its recovery take ~8 s on this BDP; measure
    # bulk goodput over the steady tail only.
    warmup = min(10.0, duration / 2.0)
    net.run(until=warmup)
    delivered_at_warmup = (
        bulk_sender.delivered_timeline[-1][1] if bulk_sender.delivered_timeline else 0
    )
    net.run(until=duration)
    timer.stop()
    delivered_at_end = bulk_sender.delivered_timeline[-1][1]
    net.run(until=duration + 2.0)
    goodput = (delivered_at_end - delivered_at_warmup) * 8 / (duration - warmup)
    return goodput, rpc_latencies, net.sim.events_processed


def mp_unit(scheduler: str = "hvc", duration: float = 30.0, seed: int = 0) -> dict:
    """One multipath mixed-workload measurement (runner unit)."""
    goodput, latencies, events = _multipath_mixed_workload(
        scheduler, duration=duration, seed=seed
    )
    return {
        "goodput_mbps": to_mbps(goodput),
        "latencies": latencies,
        "events": events,
    }


def run_multipath_ablation(
    duration: float = 30.0,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    """§4 design: per-channel subflows + schedulers vs single-path steering.

    Interleaved messages on a backlogged connection measure how well each
    approach accelerates the bytes an application is waiting on while
    filling the fat channel.
    """
    runner = runner if runner is not None else ParallelRunner()
    result = ExperimentResult(
        name="ab-mp",
        description=(
            "Multipath transport (per-channel subflows): hvc scheduler vs "
            "minRTT, on a bulk + RPC mixed workload over eMBB + URLLC."
        ),
    )
    table = Table(
        ["scheduler", "bulk goodput (Mbps)", "rpc p95 (ms)"],
        title="Multipath schedulers, mixed workload",
    )
    schedulers = ("minrtt", "hvc")
    payloads = runner.run(
        [
            RunUnit.make(
                "ab-mp",
                "repro.experiments.ablations:mp_unit",
                seed=seed,
                scheduler=scheduler,
                duration=duration,
            )
            for scheduler in schedulers
        ]
    )
    for scheduler, payload in zip(schedulers, payloads):
        cdf = Cdf(payload["latencies"])
        result.events_processed += payload["events"]
        result.values[f"{scheduler}:goodput_mbps"] = payload["goodput_mbps"]
        result.values[f"{scheduler}:rpc_p95_ms"] = to_ms(cdf.percentile(95))
        table.add_row(
            scheduler, payload["goodput_mbps"], to_ms(cdf.percentile(95))
        )
    result.tables.append(table)
    result.notes.append(
        "shape check: the hvc scheduler should match minRTT's goodput while "
        "cutting the RPC latency tail (messages ride URLLC, bulk rides eMBB)"
    )
    return result


# ----------------------------------------------------------------------
# ab-tsn: Wi-Fi TSN's express lane is paid for by other users (§2.2)
# ----------------------------------------------------------------------
def tsn_unit(express_mbps: float = 0.0, duration: float = 10.0, seed: int = 0) -> dict:
    """Bystander RPC latency under one express load level (runner unit)."""
    from repro.net.packet import Packet, PacketType
    from repro.sim.timers import PeriodicTimer

    net = HvcNetwork([wifi_tsn_spec()], steering="single", seed=seed)

    # User A: time-critical express traffic (control-class datagrams).
    express_bytes = 250  # URLLC-sized small packets
    if express_mbps > 0:
        # The express stream loads both directions (two TSN talkers).
        interval = 2 * express_bytes * 8 / (express_mbps * 1e6)

        def inject() -> None:
            up = Packet(
                flow_id=999, ptype=PacketType.PROBE, header_bytes=express_bytes
            )
            net.client.send(up)
            down = Packet(
                flow_id=998, ptype=PacketType.PROBE, header_bytes=express_bytes
            )
            net.server.send(down)

        PeriodicTimer(net.sim, interval, inject, start_delay=0.0)
        net.server.set_default_handler(lambda p: None)
        net.client.set_default_handler(lambda p: None)

    # User B: request/response RPCs in the normal band.
    latencies: List[float] = []
    state = {"started": 0.0}
    flow_id = next_flow_id()

    def on_reply(receipt):
        latencies.append(net.now - state["started"])
        issue()

    client = Connection(net.sim, net.client, flow_id, cc="cubic", on_message=on_reply)

    def on_request(receipt):
        server.send_message(kb(20), message_id=receipt.message_id + 5000)

    server = Connection(net.sim, net.server, flow_id, cc="cubic", on_message=on_request)

    def issue():
        if len(latencies) >= 50:
            return
        state["started"] = net.now
        client.send_message(kb(1), message_id=len(latencies))

    issue()
    while len(latencies) < 50 and net.now < duration * 6 and net.sim.pending_events:
        net.run(until=net.now + 0.5)
    cdf = Cdf(latencies)
    return {"p95_ms": to_ms(cdf.percentile(95)), "events": net.sim.events_processed}


def run_tsn_ablation(
    duration: float = 10.0,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    """One user's time-critical traffic vs everyone else's latency.

    §2.2: "unlike cellular, resources are not dedicated to a user and other
    users bear the cost of one's use of the low latency service." On a
    shared Wi-Fi TSN channel, user A injects express (control-class)
    traffic at increasing rates while user B runs small RPCs in the normal
    band; B's latency quantifies the multiplexing loss.
    """
    runner = runner if runner is not None else ParallelRunner()
    result = ExperimentResult(
        name="ab-tsn",
        description=(
            "Wi-Fi TSN express-lane cost: bystander RPC latency vs another "
            "user's time-critical traffic rate on the shared channel."
        ),
    )
    table = Table(
        ["express load (Mbps)", "bystander RPC p95 (ms)"],
        title="TSN multiplexing cost",
    )
    loads = (0.0, 8.0, 24.0)
    payloads = runner.run(
        [
            RunUnit.make(
                "ab-tsn",
                "repro.experiments.ablations:tsn_unit",
                seed=seed,
                express_mbps=express_mbps,
                duration=duration,
            )
            for express_mbps in loads
        ]
    )
    for express_mbps, payload in zip(loads, payloads):
        result.events_processed += payload["events"]
        result.values[f"{express_mbps}:p95_ms"] = payload["p95_ms"]
        table.add_row(express_mbps, payload["p95_ms"])
    result.tables.append(table)
    result.notes.append(
        "shape check: the bystander's latency grows with the express load — "
        "TSN's determinism for one user is multiplexing loss for the rest"
    )
    return result


# ----------------------------------------------------------------------
# ab-reseq: the shim resequencer is load-bearing
# ----------------------------------------------------------------------
def reseq_unit(enabled: bool = True, duration: float = 20.0, seed: int = 0) -> dict:
    """CUBIC bulk with the reorder buffer on/off (runner unit)."""
    net = HvcNetwork(
        [fixed_embb_spec(), urllc_spec()],
        steering="dchannel",
        seed=seed,
        resequence=enabled,
    )
    bulk = BulkTransfer(net, cc="cubic")
    net.run(until=duration)
    return {
        "mbps": to_mbps(bulk.mean_throughput_bps(end=duration)),
        "rtx": bulk.pair.client.stats.retransmissions,
        "events": net.sim.events_processed,
    }


def run_resequencer_ablation(
    duration: float = 20.0,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    """CUBIC bulk under DChannel with and without the reorder buffer.

    Splitting one TCP flow's packets across channels with ~10× different
    delays reorders them; a SACK transport misreads the holes as loss and
    keeps halving its window (spurious loss inference), pinning throughput
    near the floor. DChannel deploys a receiver-side resequencer precisely
    for this — Fig. 1a's "CUBIC fills the pipe" result depends on it.
    """
    runner = runner if runner is not None else ParallelRunner()
    result = ExperimentResult(
        name="ab-reseq",
        description=(
            "DChannel's receiver-side resequencer: CUBIC bulk throughput "
            "and spurious retransmissions with the reorder buffer on/off."
        ),
    )
    table = Table(
        ["resequencer", "throughput (Mbps)", "retransmissions"],
        title="Shim reorder protection",
    )
    settings = (("on", True), ("off", False))
    payloads = runner.run(
        [
            RunUnit.make(
                "ab-reseq",
                "repro.experiments.ablations:reseq_unit",
                seed=seed,
                enabled=enabled,
                duration=duration,
            )
            for _, enabled in settings
        ]
    )
    for (label, _), payload in zip(settings, payloads):
        result.events_processed += payload["events"]
        result.values[f"{label}:mbps"] = payload["mbps"]
        result.values[f"{label}:rtx"] = payload["rtx"]
        table.add_row(label, payload["mbps"], payload["rtx"])
    result.tables.append(table)
    result.notes.append(
        "shape check: disabling the resequencer collapses throughput — "
        "reordering-induced SACK holes read as loss, so the window keeps "
        "halving (the 'on' run's retransmissions are CUBIC's ordinary "
        "buffer-overflow sawtooth at full rate)"
    )
    return result


# ----------------------------------------------------------------------
# ab-cost: latency vs monetary cost
# ----------------------------------------------------------------------
def cost_unit(willingness: float = 0.0, seed: int = 0) -> dict:
    """Latency/spend at one willingness-to-pay level (runner unit)."""
    steerer = CostAwareSteerer(
        budget_per_s=0.05, burst=0.2, max_price_per_second_saved=willingness
    )
    net = HvcNetwork([fiber_wan_spec(), cisp_spec()], steering=steerer, seed=seed)
    latencies: List[float] = []
    flow_id = next_flow_id()
    state = {"started_at": 0.0}

    def on_response(receipt):
        latencies.append(net.now - state["started_at"])
        issue()

    client = Connection(
        net.sim, net.client, flow_id, cc="cubic", on_message=on_response
    )

    def on_request(receipt):
        server.send_message(kb(4), message_id=receipt.message_id + 5000)

    server = Connection(
        net.sim, net.server, flow_id, cc="cubic", on_message=on_request
    )

    def issue():
        if len(latencies) >= 60:
            return
        state["started_at"] = net.now
        client.send_message(300, message_id=len(latencies))

    issue()
    while len(latencies) < 60 and net.now < 120.0 and net.sim.pending_events:
        net.run(until=net.now + 1.0)
    cdf = Cdf(latencies)
    return {
        "p95_ms": to_ms(cdf.percentile(95)),
        "spend": net.total_cost(),
        "events": net.sim.events_processed,
    }


def run_cost_ablation(
    seed: int = 0, runner: Optional[ParallelRunner] = None
) -> ExperimentResult:
    """Request-response latency vs spend across willingness-to-pay levels."""
    runner = runner if runner is not None else ParallelRunner()
    result = ExperimentResult(
        name="ab-cost",
        description=(
            "§3.1 opportunity: a cISP-style priced low-latency WAN channel "
            "next to fiber; steering spends budget only where a packet's "
            "delivery-time saving justifies its price."
        ),
    )
    table = Table(
        ["max $/s saved", "p95 latency (ms)", "spend ($)"],
        title="Latency vs cost (cISP + fiber)",
    )
    levels = (0.0, 0.1, 10.0)
    payloads = runner.run(
        [
            RunUnit.make(
                "ab-cost",
                "repro.experiments.ablations:cost_unit",
                seed=seed,
                willingness=willingness,
            )
            for willingness in levels
        ]
    )
    for willingness, payload in zip(levels, payloads):
        result.events_processed += payload["events"]
        result.values[f"{willingness}:p95_ms"] = payload["p95_ms"]
        result.values[f"{willingness}:spend"] = payload["spend"]
        table.add_row(willingness, payload["p95_ms"], f"{payload['spend']:.4f}")
    result.tables.append(table)
    result.notes.append(
        "shape check: latency falls and spend rises as willingness-to-pay grows"
    )
    return result
