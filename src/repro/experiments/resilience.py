"""The recovery-SLO scorecard (``python -m repro resilience``).

A runner-unit grid over disruption regime × steering policy × CCA, in two
modes:

* **packet cells** — one flow per requirement class (latency, deadline,
  throughput, background) on the Fig. 1 channel pair, with the regime's
  fault schedule armed and a :class:`~repro.faults.RecoveryTracker`
  watching. Each cell reports time-to-recover p50/p99, per-class SLO
  violation rates (targets from :mod:`repro.resilience.slo`),
  downtime-weighted goodput (rate through the outage windows vs clear
  air), and failover counts.
* **fleet cells** — one per regime: 10k fluid tenants plus a packet
  foreground on the hybrid engine, the same schedule armed, the full
  invariant catalogue checking every event. The handover regime blacks
  out *every* channel at once — the fleet must stall cleanly and drain
  after restore without violating a law.

Disruption regimes:

=============== ====================================================
regime           schedule source
=============== ====================================================
handover         scripted: one eMBB blackout (packet cells); a
                 correlated all-channel blackout (fleet cell)
starlink-leo     derived from the ``starlink-leo`` catalog trace via
                 :meth:`FaultSchedule.from_trace` (periodic handoff
                 micro-outages)
wifi-5g-handoff  derived from the ``wifi-5g-handoff`` trace (dead
                 gaps + post-handoff delay spikes)
=============== ====================================================

Derived schedules are computed at unit-declaration time and passed into
units as primitive rows, so cells stay content-addressed in the result
cache and warm re-runs are byte-identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps.bulk import BulkTransfer
from repro.core.api import HvcNetwork
from repro.core.results import ExperimentResult, Table
from repro.faults import FaultInjector, FaultSchedule, RecoveryTracker
from repro.net.hvc import fixed_embb_spec, urllc_spec
from repro.resilience.slo import RECOVERY_SLOS, violation_rate
from repro.runner import ParallelRunner, RunUnit
from repro.steering.requirements import requirement_class
from repro.units import to_mbps

DEFAULT_REGIMES = ("handover", "starlink-leo", "wifi-5g-handoff")
DEFAULT_POLICIES = ("single", "dchannel", "redundant")
DEFAULT_CCAS = ("cubic", "bbr")
DEFAULT_DURATION = 20.0
QUICK_DURATION = 8.0
#: Fleet cells keep the acceptance-scale tenant mass even in --quick —
#: the fluid stepper's cost is per tick, not per tenant-packet.
FLEET_TENANTS = 10_000
FLEET_FOREGROUND = 4
#: Faults must fully revert before the run ends (final invariant check).
HORIZON_SLACK = 0.25
#: One flow per requirement class, ids pinned for cache stability.
CLASS_FLOWS = (
    ("latency", 501),
    ("deadline", 502),
    ("throughput", 503),
    ("background", 504),
)
#: The scripted handover regime (packet cells): one eMBB blackout. Start
#: and length scale down with short (quick-mode) durations so the
#: blackout always fits inside the clip horizon.
HANDOVER_START = 3.0
HANDOVER_LENGTH = 1.0


def _handover_window(duration: float):
    start = min(HANDOVER_START, duration * 0.4)
    length = min(HANDOVER_LENGTH, duration * 0.2)
    return start, length


def regime_rows(regime: str, duration: float, channel: str = "embb") -> List:
    """The regime's fault schedule as primitive rows, clipped to fit.

    ``handover`` is scripted; trace-named regimes are derived from the
    catalog trace generated at this duration, so the schedule is exactly
    the disruption a traced link would have seen over the run.
    """
    if regime == "handover":
        start, length = _handover_window(duration)
        schedule = FaultSchedule().blackout(channel, start, length)
    else:
        from repro.traces.catalog import get_trace

        trace = get_trace(regime, duration=duration)
        schedule = FaultSchedule.from_trace(trace, channel=channel)
    return schedule.clipped(max(duration - HORIZON_SLACK, 1e-3)).to_params()


def fleet_regime_rows(regime: str, duration: float, channels: Sequence[str]) -> List:
    """Fleet-cell schedules; the handover regime hits *every* channel."""
    if regime == "handover":
        start, length = _handover_window(duration)
        schedule = FaultSchedule().correlated(
            tuple(channels), start, length, kind="blackout"
        )
        return schedule.clipped(max(duration - HORIZON_SLACK, 1e-3)).to_params()
    return regime_rows(regime, duration, channel=channels[0])


def _outage_windows(schedule: FaultSchedule) -> List:
    """Merged union of the schedule's outage/blackout windows."""
    spans = sorted(
        (f.start, f.end) for f in schedule if f.kind in ("outage", "blackout")
    )
    merged: List = []
    for start, end in spans:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def resilience_unit(
    regime: str = "handover",
    steering: str = "dchannel",
    cc: str = "cubic",
    fault_rows: Sequence = (),
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> dict:
    """One packet-mode scorecard cell as a picklable payload."""
    net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering=steering, seed=seed)
    schedule = FaultSchedule.from_params(fault_rows)
    FaultInjector(net, schedule).arm()
    tracker = RecoveryTracker(net)
    flows: Dict[str, BulkTransfer] = {}
    flow_class: Dict[int, str] = {}
    for rclass, flow_id in CLASS_FLOWS:
        rc = requirement_class(rclass)
        flows[rclass] = BulkTransfer(
            net, cc=cc, flow_priority=rc.flow_priority, flow_id=flow_id
        )
        flow_class[flow_id] = rclass
    net.run(until=duration)

    summary = tracker.summary()
    by_flow = tracker.recovery_by_flow()
    slo_rates: Dict[str, float] = {}
    for rclass, flow_id in CLASS_FLOWS:
        samples = by_flow.get(flow_id, [])
        slo_rates[rclass] = violation_rate(
            samples, RECOVERY_SLOS[rclass].ttr_target_s
        )

    windows = _outage_windows(schedule)
    down_time = sum(end - start for start, end in windows)
    down_bps = 0.0
    total_bps = 0.0
    for bulk in flows.values():
        total_bps += bulk.mean_throughput_bps(0.0, duration)
        for start, end in windows:
            down_bps += bulk.mean_throughput_bps(start, end) * (end - start)
    down_bps = down_bps / down_time if down_time > 0 else 0.0

    return {
        "ttr_p50_s": summary["recovery_p50_s"],
        "ttr_p99_s": summary["recovery_p99_s"],
        "ttr_max_s": summary["recovery_max_s"],
        "recovery_samples": summary["recovery_samples"],
        "failovers": summary["failovers"],
        "outages": summary["outages"],
        "downtime_s": summary["downtime_s"],
        "slo_violation_rates": slo_rates,
        "goodput_mbps": to_mbps(total_bps),
        "goodput_during_outage_mbps": to_mbps(down_bps),
        "outage_window_s": round(down_time, 6),
        "events": net.sim.events_processed,
    }


def resilience_fleet_unit(
    regime: str = "handover",
    fault_rows: Sequence = (),
    tenants: int = FLEET_TENANTS,
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> dict:
    """One fleet-mode cell: the hybrid engine under the regime's faults.

    The invariant catalogue is armed on every event and the injector is
    audited, so a fluid tenant pushing load into a dead channel — the
    fault-blindness this subsystem fixes — would fail the run, not skew
    it.
    """
    from repro.check.monitor import InvariantMonitor
    from repro.fleet.hybrid import FleetConfig, FleetSimulation

    config = FleetConfig(
        tenants=tenants,
        foreground=FLEET_FOREGROUND,
        duration=duration,
        seed=seed,
        preset="paper",
    )
    sim = FleetSimulation(config)
    monitor = InvariantMonitor(sim.net).arm()
    schedule = FaultSchedule.from_params(fault_rows)
    if len(schedule):
        injector = FaultInjector(sim.net, schedule).arm()
        monitor.watch_injector(injector)
    out = sim.run()
    monitor.final_check()

    bg = out["background"]
    stalls = bg["stalls"]
    return {
        "tenants": tenants,
        "completed": bg["completed"],
        "active_at_end": bg["active_at_end"],
        "stall_events": stalls["events"],
        "stall_time_s": stalls["time_total_s"],
        "stall_events_by_class": stalls["events_by_class"],
        "stalled_at_end": stalls["stalled_at_end"],
        "outages": sum(ch.outage_count for ch in sim.net.channels),
        "downtime_s": round(
            sum(ch.downtime_total for ch in sim.net.channels), 9
        ),
        "invariant_checks": monitor.checks_run,
        "background_digest": out["background_digest"],
        "events": out["events_processed"],
    }


def resilience_units(
    regimes: Sequence[str],
    policies: Sequence[str],
    ccas: Sequence[str],
    duration: float,
    fleet_tenants: int,
    fleet_duration: float,
    seed: int,
) -> List[RunUnit]:
    """Declare the grid (ordering: regime, policy, cc; then fleet cells)."""
    units = []
    for regime in regimes:
        rows = regime_rows(regime, duration)
        for policy in policies:
            for cc in ccas:
                units.append(
                    RunUnit.make(
                        "resilience",
                        "repro.experiments.resilience:resilience_unit",
                        seed=seed,
                        regime=regime,
                        steering=policy,
                        cc=cc,
                        fault_rows=rows,
                        duration=duration,
                    )
                )
    for regime in regimes:
        fleet_rows = fleet_regime_rows(
            regime, fleet_duration, ("embb", "urllc")
        )
        units.append(
            RunUnit.make(
                "resilience-fleet",
                "repro.experiments.resilience:resilience_fleet_unit",
                seed=seed,
                regime=regime,
                fault_rows=fleet_rows,
                tenants=fleet_tenants,
                duration=fleet_duration,
            )
        )
    return units


def run_resilience(
    duration: float = DEFAULT_DURATION,
    regimes: Sequence[str] = DEFAULT_REGIMES,
    policies: Sequence[str] = DEFAULT_POLICIES,
    ccas: Sequence[str] = DEFAULT_CCAS,
    fleet_tenants: int = FLEET_TENANTS,
    fleet_duration: Optional[float] = None,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
) -> ExperimentResult:
    """The recovery-SLO scorecard: regime × policy × CCA, packet + fleet."""
    runner = runner if runner is not None else ParallelRunner()
    if fleet_duration is None:
        fleet_duration = min(duration, 8.0)
    result = ExperimentResult(
        name="resilience",
        description=(
            "Recovery-SLO scorecard: time-to-recover percentiles, per-class "
            "SLO violation rates, downtime-weighted goodput and failovers "
            "for every disruption regime x steering policy x CCA, plus a "
            "fleet cell per regime (10k fluid tenants, invariants armed)."
        ),
    )
    payloads = runner.run(
        resilience_units(
            regimes, policies, ccas, duration,
            fleet_tenants, fleet_duration, seed,
        )
    )

    table = Table(
        [
            "regime", "policy", "CCA", "TTR p50 (s)", "TTR p99 (s)",
            "failovers", "SLO viol (worst class)", "Mbps", "Mbps in outage",
        ],
        title="Recovery-SLO scorecard (packet cells)",
    )
    index = 0
    for regime in regimes:
        for policy in policies:
            for cc in ccas:
                payload = payloads[index]
                index += 1
                key = f"{regime}/{policy}/{cc}"
                result.values[f"{key}/ttr_p50_s"] = payload["ttr_p50_s"]
                result.values[f"{key}/ttr_p99_s"] = payload["ttr_p99_s"]
                result.values[f"{key}/failovers"] = payload["failovers"]
                result.values[f"{key}/goodput_mbps"] = round(
                    payload["goodput_mbps"], 3
                )
                result.values[f"{key}/goodput_during_outage_mbps"] = round(
                    payload["goodput_during_outage_mbps"], 3
                )
                rates = payload["slo_violation_rates"]
                for rclass, rate in rates.items():
                    result.values[f"{key}/slo_violation_{rclass}"] = round(rate, 4)
                worst = max(rates, key=lambda k: rates[k])
                result.events_processed += payload["events"]
                table.add_row(
                    regime,
                    policy,
                    cc,
                    round(payload["ttr_p50_s"], 3),
                    round(payload["ttr_p99_s"], 3),
                    payload["failovers"],
                    f"{worst} {rates[worst]:.0%}",
                    round(payload["goodput_mbps"], 2),
                    round(payload["goodput_during_outage_mbps"], 2),
                )
    result.tables.append(table)

    fleet_table = Table(
        [
            "regime", "tenants", "completed", "stall events",
            "stall time (s)", "stalled at end", "downtime (s)", "checks",
        ],
        title=f"Fleet cells ({fleet_tenants} fluid tenants, invariants armed)",
    )
    for regime in regimes:
        payload = payloads[index]
        index += 1
        key = f"fleet/{regime}"
        result.values[f"{key}/completed"] = payload["completed"]
        result.values[f"{key}/stall_events"] = payload["stall_events"]
        result.values[f"{key}/stalled_at_end"] = payload["stalled_at_end"]
        result.values[f"{key}/downtime_s"] = payload["downtime_s"]
        result.events_processed += payload["events"]
        fleet_table.add_row(
            regime,
            payload["tenants"],
            payload["completed"],
            payload["stall_events"],
            round(payload["stall_time_s"], 3),
            payload["stalled_at_end"],
            round(payload["downtime_s"], 3),
            payload["invariant_checks"],
        )
    result.tables.append(fleet_table)

    if "single" in policies and "dchannel" in policies:
        for regime in regimes:
            single = max(
                result.values[f"{regime}/single/{cc}/ttr_p99_s"] for cc in ccas
            )
            dchannel = max(
                result.values[f"{regime}/dchannel/{cc}/ttr_p99_s"] for cc in ccas
            )
            result.notes.append(
                f"{regime}: TTR p99 {single * 1e3:.0f} ms single-channel vs "
                f"{dchannel * 1e3:.0f} ms with dchannel steering "
                "(0 ms = failover rode through every disruption)"
            )
    return result
