"""Package version (kept standalone so nothing heavy imports at setup)."""

__version__ = "1.1.0"
