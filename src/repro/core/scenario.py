"""Declarative scenario descriptions (JSON-friendly) → live networks.

A scenario names its channels, steering policy and seed in plain data, so
experiment configurations can be stored, diffed and swept::

    spec = ScenarioSpec(
        channels=[
            ChannelConfig(kind="embb", trace="5g-lowband-driving"),
            ChannelConfig(kind="urllc"),
        ],
        steering="dchannel+flowprio",
        seed=7,
    )
    net = spec.build()

``ScenarioSpec.from_dict`` accepts the same structure as parsed JSON, which
is what ``python -m repro``'s future scenario runner and user configs use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.api import HvcNetwork
from repro.errors import ScenarioError
from repro.net.channel import ChannelSpec
from repro.net.hvc import (
    cisp_spec,
    fiber_wan_spec,
    fixed_embb_spec,
    leo_spec,
    traced_embb_spec,
    urllc_spec,
    wifi_mlo_specs,
)
from repro.traces.catalog import get_trace
from repro.units import mbps, ms

#: Channel kinds a scenario may name. "wifi-mlo" expands into two channels.
CHANNEL_KINDS = (
    "embb",
    "urllc",
    "cisp",
    "fiber-wan",
    "leo",
    "wifi-mlo",
    "custom",
)


@dataclass
class ChannelConfig:
    """One channel (or channel pair, for wifi-mlo) in a scenario."""

    kind: str
    #: Trace name from the catalog ("5g-lowband-driving", ...); embb only.
    trace: Optional[str] = None
    #: Fixed-rate parameters (used when no trace / for custom channels).
    rate_mbps: Optional[float] = None
    rtt_ms: Optional[float] = None
    name: Optional[str] = None
    queue_bytes: Optional[int] = None

    def build(self, seed: int) -> List[ChannelSpec]:
        if self.kind not in CHANNEL_KINDS:
            raise ScenarioError(
                f"unknown channel kind {self.kind!r}; known: {', '.join(CHANNEL_KINDS)}"
            )
        if self.kind == "embb":
            if self.trace is not None:
                kwargs = {}
                if self.queue_bytes is not None:
                    kwargs["queue_bytes"] = self.queue_bytes
                spec = traced_embb_spec(get_trace(self.trace, seed=seed + 1), **kwargs)
                spec.name = self.name or "embb"
                return [spec]
            kwargs = {}
            if self.rate_mbps is not None:
                kwargs["rate_bps"] = mbps(self.rate_mbps)
            if self.rtt_ms is not None:
                kwargs["rtt"] = ms(self.rtt_ms)
            if self.queue_bytes is not None:
                kwargs["queue_bytes"] = self.queue_bytes
            spec = fixed_embb_spec(**kwargs)
            spec.name = self.name or "embb"
            return [spec]
        if self.kind == "urllc":
            spec = urllc_spec()
            if self.name:
                spec.name = self.name
            return [spec]
        if self.kind == "cisp":
            return [cisp_spec()]
        if self.kind == "fiber-wan":
            return [fiber_wan_spec()]
        if self.kind == "leo":
            return [leo_spec()]
        if self.kind == "wifi-mlo":
            return list(wifi_mlo_specs())
        # custom: fully explicit fixed-rate symmetric channel.
        if self.rate_mbps is None or self.rtt_ms is None:
            raise ScenarioError("custom channels need rate_mbps and rtt_ms")
        return [
            ChannelSpec.symmetric(
                self.name or "custom",
                mbps(self.rate_mbps),
                ms(self.rtt_ms) / 2.0,
                queue_bytes=self.queue_bytes or 256_000,
            )
        ]

    @classmethod
    def from_dict(cls, data: Dict) -> "ChannelConfig":
        unknown = set(data) - {
            "kind", "trace", "rate_mbps", "rtt_ms", "name", "queue_bytes"
        }
        if unknown:
            raise ScenarioError(f"unknown channel config keys: {sorted(unknown)}")
        if "kind" not in data:
            raise ScenarioError("channel config needs a 'kind'")
        return cls(**data)


@dataclass
class ScenarioSpec:
    """A complete, buildable scenario description."""

    channels: List[ChannelConfig] = field(default_factory=list)
    steering: str = "dchannel"
    server_steering: Optional[str] = None
    steering_kwargs: Dict = field(default_factory=dict)
    seed: int = 0

    def build(self) -> HvcNetwork:
        if not self.channels:
            raise ScenarioError("scenario needs at least one channel")
        specs: List[ChannelSpec] = []
        for config in self.channels:
            specs.extend(config.build(self.seed))
        return HvcNetwork(
            specs,
            steering=self.steering,
            server_steering=self.server_steering,
            steering_kwargs=self.steering_kwargs or None,
            seed=self.seed,
        )

    @classmethod
    def from_dict(cls, data: Dict) -> "ScenarioSpec":
        unknown = set(data) - {
            "channels", "steering", "server_steering", "steering_kwargs", "seed"
        }
        if unknown:
            raise ScenarioError(f"unknown scenario keys: {sorted(unknown)}")
        channels = [ChannelConfig.from_dict(c) for c in data.get("channels", [])]
        return cls(
            channels=channels,
            steering=data.get("steering", "dchannel"),
            server_steering=data.get("server_steering"),
            steering_kwargs=data.get("steering_kwargs", {}),
            seed=data.get("seed", 0),
        )

    def to_dict(self) -> Dict:
        """The JSON-ready inverse of :meth:`from_dict`."""
        return {
            "channels": [
                {k: v for k, v in vars(c).items() if v is not None}
                for c in self.channels
            ],
            "steering": self.steering,
            "server_steering": self.server_steering,
            "steering_kwargs": self.steering_kwargs,
            "seed": self.seed,
        }
