"""Core library: public API, scenario building, metrics, results."""

from repro.core.api import HvcNetwork
from repro.core.metrics import Cdf, percentile, throughput_series
from repro.core.results import ExperimentResult, Table

__all__ = [
    "HvcNetwork",
    "Cdf",
    "percentile",
    "throughput_series",
    "ExperimentResult",
    "Table",
]
