"""Result containers with paper-style text rendering.

Benchmarks print these so the regenerated tables/figures can be eyeballed
against the paper; EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


class Table:
    """A simple left-aligned text table."""

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([self._format(cell) for cell in cells])

    @staticmethod
    def _format(cell: object) -> str:
        if isinstance(cell, float):
            # One decimal for human-scale magnitudes (ms, Mbps); three
            # significant digits for small values (SSIM, probabilities).
            return f"{cell:.1f}" if abs(cell) >= 10 else f"{cell:.3g}"
        return str(cell)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


@dataclass
class SeriesSet:
    """Named (x, y) series, e.g. one line per CCA in Fig. 1a."""

    title: str
    x_label: str
    y_label: str
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)

    def add(self, name: str, points: Sequence[Tuple[float, float]]) -> None:
        self.series[name] = list(points)

    def render(self, max_points: int = 12) -> str:
        lines = [f"{self.title}  ({self.x_label} vs {self.y_label})"]
        for name, points in self.series.items():
            if len(points) > max_points:
                step = (len(points) - 1) / (max_points - 1)
                sampled = [points[int(round(i * step))] for i in range(max_points)]
            else:
                sampled = list(points)
            rendered = ", ".join(f"({x:.3g}, {y:.4g})" for x, y in sampled)
            lines.append(f"  {name}: {rendered}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


@dataclass
class PaperComparison:
    """One paper-reported number next to the measured one."""

    metric: str
    paper_value: float
    measured_value: float
    unit: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if self.paper_value == 0:
            return None
        return self.measured_value / self.paper_value

    def render(self) -> str:
        ratio = self.ratio
        ratio_text = f" ({ratio:.2f}x paper)" if ratio is not None else ""
        return (
            f"{self.metric}: paper {self.paper_value:g}{self.unit}, "
            f"measured {self.measured_value:g}{self.unit}{ratio_text}"
        )


@dataclass
class ExperimentResult:
    """Everything one experiment run produced."""

    name: str
    description: str = ""
    tables: List[Table] = field(default_factory=list)
    series: List[SeriesSet] = field(default_factory=list)
    comparisons: List[PaperComparison] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Free-form numeric outputs for programmatic assertions.
    values: Dict[str, float] = field(default_factory=dict)
    #: Total kernel events across every simulation unit this experiment ran.
    #: Deterministic for a given seed, so it doubles as a replay checksum;
    #: benchmarks divide it by wall-clock for events/sec.
    events_processed: int = 0
    #: On-disk artifacts this run produced, keyed by a short label — e.g.
    #: exported ``repro.obs`` JSONL traces ("trace:cubic" -> path), ready
    #: for ``python -m repro obs summarize``.
    artifacts: Dict[str, str] = field(default_factory=dict)

    def render(self) -> str:
        parts = [f"=== {self.name} ==="]
        if self.description:
            parts.append(self.description)
        for table in self.tables:
            parts.append(table.render())
        for series_set in self.series:
            parts.append(series_set.render())
        if self.comparisons:
            parts.append("Paper vs measured:")
            parts.extend(f"  {c.render()}" for c in self.comparisons)
        for note in self.notes:
            parts.append(f"note: {note}")
        if self.artifacts:
            listed = "\n".join(
                f"  {label}: {path}" for label, path in sorted(self.artifacts.items())
            )
            parts.append("artifacts (try `python -m repro obs summarize <path>`):\n" + listed)
        return "\n\n".join(parts)

    def __str__(self) -> str:
        return self.render()
