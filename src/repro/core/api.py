"""The library's front door: :class:`HvcNetwork`.

Quickstart::

    from repro import HvcNetwork, units
    from repro.net.hvc import fixed_embb_spec, urllc_spec

    net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering="dchannel")
    conn = net.open_connection(cc="cubic")
    conn.client.send_message(units.kb(500), message_id=1)
    net.run(until=10.0)

An ``HvcNetwork`` is two hosts (client, server) joined by a set of
heterogeneous channels, with a steering policy instance installed at each
end. Applications in :mod:`repro.apps` are built on the same handles this
class exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.errors import ScenarioError
from repro.net.channel import Channel, ChannelSpec, END_A, END_B
from repro.net.node import Device
from repro.sim.kernel import Simulator
from repro.sim.random import RandomStreams
from repro.steering import make_steerer
from repro.steering.base import Steerer
from repro.transport import next_flow_id
from repro.transport.connection import Connection, MessageReceipt
from repro.transport.datagram import DatagramSocket


@dataclass
class ConnectionPair:
    """Both endpoints of one reliable flow."""

    client: Connection
    server: Connection

    def close(self) -> None:
        self.client.close()
        self.server.close()


@dataclass
class DatagramPair:
    """Both endpoints of one datagram flow."""

    client: DatagramSocket
    server: DatagramSocket

    def close(self) -> None:
        self.client.close()
        self.server.close()


class HvcNetwork:
    """Two hosts joined by heterogeneous virtual channels."""

    def __init__(
        self,
        channel_specs: Sequence[ChannelSpec],
        steering: Union[str, Steerer] = "dchannel",
        server_steering: Union[str, Steerer, None] = None,
        steering_kwargs: Optional[dict] = None,
        seed: int = 0,
        resequence: bool = True,
    ) -> None:
        """``resequence=False`` disables the shim reorder buffer at both
        hosts — the configuration the ``ab-reseq`` ablation uses to show
        why DChannel needs it."""
        if not channel_specs:
            raise ScenarioError("at least one channel spec is required")
        self.sim = Simulator()
        self.streams = RandomStreams(seed)
        self.channels: List[Channel] = [
            Channel(self.sim, spec, index=i, rng=self.streams.stream(f"channel:{i}"))
            for i, spec in enumerate(channel_specs)
        ]
        self.client = Device(self.sim, "client", resequence=resequence)
        self.server = Device(self.sim, "server", resequence=resequence)
        self.client.attach(self.channels, END_A)
        self.server.attach(self.channels, END_B)

        kwargs = steering_kwargs or {}
        self.client.set_steerer(self._resolve(steering, kwargs))
        if server_steering is None:
            server_steering = steering
        self.server.set_steerer(self._resolve(server_steering, kwargs))

        #: Observability context (see :meth:`attach_obs`); ``None`` keeps
        #: every instrumentation site on its no-op fast path.
        self.obs = None
        #: The channel sampler :meth:`attach_obs` starts (a
        #: :class:`~repro.net.monitor.ChannelMonitor` feeding the registry).
        self.obs_monitor = None
        #: Every flow opened through this network, in creation order. The
        #: invariant monitor (:mod:`repro.check`) audits transport state
        #: through these lists; closing a pair does not remove it.
        self.connections: List[ConnectionPair] = []
        self.datagrams: List[DatagramPair] = []

    def attach_obs(self, obs=None):
        """Wire this network into a :class:`repro.obs.Observability` context.

        Registers metric collectors for every link/device and the kernel,
        starts the channel sampler, and — when ``obs.tracing`` — installs
        packet-lifecycle trace adapters on the whole data path. Call
        *before* opening connections so transport probes attach too.
        Returns the context for chaining::

            obs = net.attach_obs(Observability(tracing=True))
        """
        from repro.obs import Observability, wire_network

        if obs is None:
            obs = Observability()
        if self.obs is not None:
            raise ScenarioError("network already has an observability context")
        self.obs = obs
        self.obs_monitor = wire_network(self, obs)
        return obs

    @staticmethod
    def _resolve(policy: Union[str, Steerer], kwargs: dict) -> Steerer:
        if isinstance(policy, str):
            return make_steerer(policy, **kwargs)
        return policy

    # ------------------------------------------------------------------
    # Flows
    # ------------------------------------------------------------------
    def open_connection(
        self,
        cc: str = "cubic",
        flow_id: Optional[int] = None,
        flow_priority: Optional[int] = None,
        handshake: bool = False,
        on_server_message=None,
        on_client_message=None,
        **kwargs,
    ) -> ConnectionPair:
        """Open a reliable flow; client and server endpoints are returned.

        ``on_server_message`` fires for messages the *client* sends (they
        complete at the server), and vice versa.
        """
        fid = flow_id if flow_id is not None else next_flow_id()
        client = Connection(
            self.sim,
            self.client,
            fid,
            cc=cc,
            flow_priority=flow_priority,
            handshake=handshake,
            on_message=on_client_message,
            **kwargs,
        )
        server = Connection(
            self.sim,
            self.server,
            fid,
            cc=cc,
            flow_priority=flow_priority,
            on_message=on_server_message,
            **kwargs,
        )
        pair = ConnectionPair(client=client, server=server)
        self.connections.append(pair)
        return pair

    def open_datagram(
        self,
        flow_id: Optional[int] = None,
        flow_priority: Optional[int] = None,
        on_server_message=None,
        on_client_message=None,
        **kwargs,
    ) -> DatagramPair:
        """Open an unreliable message flow between the two hosts.

        Extra keyword arguments (e.g. ``blackout="buffer"``) are forwarded
        to both :class:`~repro.transport.datagram.DatagramSocket` ends.
        """
        fid = flow_id if flow_id is not None else next_flow_id()
        client = DatagramSocket(
            self.sim, self.client, fid, flow_priority=flow_priority,
            on_message=on_client_message, **kwargs,
        )
        server = DatagramSocket(
            self.sim, self.server, fid, flow_priority=flow_priority,
            on_message=on_server_message, **kwargs,
        )
        pair = DatagramPair(client=client, server=server)
        self.datagrams.append(pair)
        return pair

    # ------------------------------------------------------------------
    # Execution & inspection
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Advance the simulation (delegates to the kernel)."""
        self.sim.run(until=until, max_events=max_events)

    @property
    def now(self) -> float:
        return self.sim.now

    def channel_named(self, name: str) -> Channel:
        for channel in self.channels:
            if channel.name == name:
                return channel
        names = ", ".join(c.name for c in self.channels)
        raise ScenarioError(f"no channel named {name!r}; channels: {names}")

    def total_cost(self) -> float:
        """Total monetary cost accrued across all channels."""
        return sum(
            channel.cost_bytes * channel.spec.cost_per_byte for channel in self.channels
        )
