"""Measurement utilities: percentiles, CDFs, throughput series."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def percentile(samples: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile, ``p`` in [0, 100]."""
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    # a + f*(b-a) is exact when a == b (a*(1-f) + b*f can round below a).
    return ordered[low] + frac * (ordered[high] - ordered[low])


class Cdf:
    """Empirical CDF over a fixed sample set."""

    def __init__(self, samples: Iterable[float]) -> None:
        self.samples: List[float] = sorted(samples)
        if not self.samples:
            raise ValueError("CDF needs at least one sample")

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def min(self) -> float:
        return self.samples[0]

    @property
    def max(self) -> float:
        return self.samples[-1]

    def percentile(self, p: float) -> float:
        return percentile(self.samples, p)

    @property
    def median(self) -> float:
        return self.percentile(50)

    def probability_below(self, value: float) -> float:
        """P(X <= value)."""
        import bisect

        return bisect.bisect_right(self.samples, value) / len(self.samples)

    def points(self, count: int = 100) -> List[Tuple[float, float]]:
        """(value, cumulative probability) pairs for plotting/printing."""
        if count < 2:
            raise ValueError(f"count must be >= 2, got {count}")
        step = (len(self.samples) - 1) / (count - 1)
        result = []
        for i in range(count):
            index = int(round(i * step))
            result.append((self.samples[index], (index + 1) / len(self.samples)))
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Cdf n={len(self)} p50={self.median:.4g} p95={self.percentile(95):.4g} "
            f"max={self.max:.4g}>"
        )


def throughput_series(
    delivered_timeline: Sequence[Tuple[float, int]],
    interval: float = 1.0,
    end_time: float = None,
) -> List[Tuple[float, float]]:
    """Convert a cumulative (time, bytes) timeline to (time, bits/s) bins.

    Each output point ``(t, r)`` is the average rate over ``[t, t+interval)``.
    """
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    if not delivered_timeline:
        return []
    horizon = end_time if end_time is not None else delivered_timeline[-1][0]
    bins: List[Tuple[float, float]] = []
    t = 0.0
    index = 0
    prev_bytes = 0
    while t < horizon:
        t_end = t + interval
        cumulative = prev_bytes
        while index < len(delivered_timeline) and delivered_timeline[index][0] < t_end:
            cumulative = delivered_timeline[index][1]
            index += 1
        bins.append((t, (cumulative - prev_bytes) * 8.0 / interval))
        prev_bytes = cumulative
        t = t_end
    return bins


def mean_throughput_bps(
    delivered_timeline: Sequence[Tuple[float, int]],
    start: float = 0.0,
    end: float = None,
) -> float:
    """Average delivery rate between ``start`` and ``end`` (bits/s)."""
    if not delivered_timeline:
        return 0.0
    if end is None:
        end = delivered_timeline[-1][0]
    if end <= start:
        raise ValueError(f"end ({end}) must exceed start ({start})")
    bytes_at_start = 0
    bytes_at_end = 0
    for t, total in delivered_timeline:
        if t <= start:
            bytes_at_start = total
        if t <= end:
            bytes_at_end = total
    return (bytes_at_end - bytes_at_start) * 8.0 / (end - start)
