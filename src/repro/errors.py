"""Exception hierarchy for the HVC reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event kernel.

    Examples: scheduling an event in the past, running a simulator that was
    already stopped, or re-entrant ``run`` calls.
    """


class NetworkError(ReproError):
    """Raised for invalid network configuration or packet handling."""


class ChannelDownError(NetworkError):
    """Raised when a packet is sent to a channel that is administratively down."""


class TransportError(ReproError):
    """Raised for transport-layer protocol violations or misuse."""


class ConnectionClosedError(TransportError):
    """Raised when writing to or reading from a closed connection."""


class SteeringError(ReproError):
    """Raised when a steering policy is misconfigured.

    Example: a policy that requires message-priority tags is attached to a
    device whose applications never tag packets.
    """


class TraceError(ReproError):
    """Raised for malformed traces (empty, negative rates, bad file format)."""


class ScenarioError(ReproError):
    """Raised when a scenario description is inconsistent or incomplete."""


class ExperimentError(ReproError):
    """Raised when an experiment definition cannot be run as configured."""


class RunnerError(ReproError):
    """Raised when the parallel experiment runner cannot execute a unit.

    Examples: a unit function path that does not resolve, parameters that
    cannot be hashed into a cache key, or a worker-process failure (the
    original exception is attached as ``__cause__``).
    """


class UnitTimeoutError(RunnerError):
    """Raised when a unit exceeds its per-unit wall-clock timeout.

    The runner kills the worker pool that was executing the unit (a hung
    simulation cannot be interrupted any other way), records the outcome,
    and respawns the pool for the remaining units.
    """


class InvariantError(ReproError):
    """Raised by :mod:`repro.check` when a runtime conservation law fails.

    Carries a structured ``report`` dict alongside the rendered message:
    simulation time, the violated law, the entity it guards, the counter
    deltas that disagree, and the last few events the monitor observed —
    enough to triage without re-running.
    """

    def __init__(self, message: str, report: dict = None) -> None:
        super().__init__(message)
        self.report = report if report is not None else {}
