"""Exception hierarchy for the HVC reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event kernel.

    Examples: scheduling an event in the past, running a simulator that was
    already stopped, or re-entrant ``run`` calls.
    """


class NetworkError(ReproError):
    """Raised for invalid network configuration or packet handling."""


class ChannelDownError(NetworkError):
    """Raised when a packet is sent to a channel that is administratively down."""


class TransportError(ReproError):
    """Raised for transport-layer protocol violations or misuse."""


class ConnectionClosedError(TransportError):
    """Raised when writing to or reading from a closed connection."""


class SteeringError(ReproError):
    """Raised when a steering policy is misconfigured.

    Example: a policy that requires message-priority tags is attached to a
    device whose applications never tag packets.
    """


class TraceError(ReproError):
    """Raised for malformed traces (empty, negative rates, bad file format)."""


class ScenarioError(ReproError):
    """Raised when a scenario description is inconsistent or incomplete."""


class ExperimentError(ReproError):
    """Raised when an experiment definition cannot be run as configured."""


class RunnerError(ReproError):
    """Raised when the parallel experiment runner cannot execute a unit.

    Examples: a unit function path that does not resolve, parameters that
    cannot be hashed into a cache key, or a worker-process failure (the
    original exception is attached as ``__cause__``).
    """
