"""Copa (Arun & Balakrishnan, NSDI 2018), simplified.

Copa targets a sending rate of ``1 / (δ · d_q)`` packets per second, where
``d_q`` is the standing queueing delay (RTTstanding − RTTmin). The window
moves toward that target by ``v/(δ·cwnd)`` packets per ACK, with the
velocity ``v`` doubling while the direction is consistent.

Copa is used by large real-time video deployments, which makes it a
natural fifth delay-based subject for the Fig. 1 experiment: like Vegas
and BBR it keys off the RTT floor, so DChannel's steering — which hands it
a floor from a channel its data does not actually ride — collapses its
target rate the same way.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.transport.cc.base import AckSample, CongestionControl, INITIAL_WINDOW_SEGMENTS

DEFAULT_DELTA = 0.5
#: RTTstanding window: min RTT over roughly half an RTT of samples; we use
#: a short time window as the approximation.
STANDING_WINDOW = 0.1
MIN_QUEUE_DELAY = 1e-4


class Copa(CongestionControl):
    name = "copa"

    def __init__(self, mss: int = 1460, delta: float = DEFAULT_DELTA) -> None:
        super().__init__(mss)
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = delta
        self._cwnd = float(INITIAL_WINDOW_SEGMENTS * mss)
        self._rtt_min: Optional[float] = None
        self._recent: Deque[Tuple[float, float]] = deque()  # (time, rtt)
        self._velocity = 1.0
        self._direction = 0  # +1 growing, -1 shrinking
        self._srtt = 0.05

    # ------------------------------------------------------------------
    def _rtt_standing(self, now: float) -> Optional[float]:
        while self._recent and self._recent[0][0] < now - STANDING_WINDOW:
            self._recent.popleft()
        if not self._recent:
            return None
        return min(rtt for _, rtt in self._recent)

    def on_ack(self, sample: AckSample) -> None:
        if sample.rtt is None:
            return
        now = sample.now
        self._srtt = 0.9 * self._srtt + 0.1 * sample.rtt
        if self._rtt_min is None or sample.rtt < self._rtt_min:
            self._rtt_min = sample.rtt
        self._recent.append((now, sample.rtt))
        standing = self._rtt_standing(now)
        if standing is None:
            return
        queue_delay = max(MIN_QUEUE_DELAY, standing - self._rtt_min)
        target_rate_pps = 1.0 / (self.delta * queue_delay)
        current_rate_pps = (self._cwnd / self.mss) / max(standing, 1e-6)

        step = self._velocity * self.mss / (self.delta * (self._cwnd / self.mss))
        if current_rate_pps < target_rate_pps:
            direction = +1
            self._cwnd += step * (sample.newly_acked / self.mss)
        else:
            direction = -1
            self._cwnd -= step * (sample.newly_acked / self.mss)
        if direction == self._direction:
            self._velocity = min(self._velocity * 1.04, 64.0)
        else:
            self._velocity = 1.0
            self._direction = direction
        self._cwnd = max(self._cwnd, 2.0 * self.mss)

    def on_loss(self, now: float, in_flight: int) -> None:
        """Copa's default mode reacts to loss only mildly."""
        self._cwnd = max(2.0 * self.mss, self._cwnd * 0.85)

    def on_timeout(self, now: float) -> None:
        self._cwnd = float(2 * self.mss)
        self._velocity = 1.0
        self._direction = 0

    @property
    def cwnd_bytes(self) -> float:
        return max(self._cwnd, 2.0 * self.mss)

    @property
    def pacing_rate_bps(self) -> Optional[float]:
        # Copa paces at 2×cwnd/RTT to smooth bursts (per the paper).
        return 2.0 * self._cwnd * 8.0 / max(self._srtt, 1e-3)
