"""Congestion control algorithms (pluggable, pure control loops).

Registry usage::

    cc = make_cc("bbr", mss=1460)
    cc = make_cc("hvc-bbr", mss=1460)   # HVC-aware wrapper around BBR
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import TransportError
from repro.transport.cc.base import AckSample, CongestionControl
from repro.transport.cc.reno import Reno
from repro.transport.cc.cubic import Cubic
from repro.transport.cc.bbr import Bbr
from repro.transport.cc.bbr2 import Bbr2
from repro.transport.cc.copa import Copa
from repro.transport.cc.requirement import RequirementCC, requirement_cc_kwargs
from repro.transport.cc.vegas import Vegas
from repro.transport.cc.vivace import Vivace
from repro.transport.cc.hvc_aware import HvcAware


def _bbr2_plus(mss: int = 1460, **kwargs) -> Bbr2:
    return Bbr2(mss=mss, delay_aware=True, **kwargs)


def _req(class_name: str) -> Callable[..., CongestionControl]:
    def factory(mss: int = 1460, **kwargs) -> RequirementCC:
        return RequirementCC(class_name, mss=mss, **kwargs)

    return factory


_REGISTRY: Dict[str, Callable[..., CongestionControl]] = {
    "reno": Reno,
    "cubic": Cubic,
    "bbr": Bbr,
    "bbr2": Bbr2,
    "bbr2+": _bbr2_plus,
    "copa": Copa,
    "vegas": Vegas,
    "vivace": Vivace,
    "req-latency": _req("latency"),
    "req-throughput": _req("throughput"),
    "req-deadline": _req("deadline"),
    "req-background": _req("background"),
}


def list_ccs() -> List[str]:
    """Names accepted by :func:`make_cc` (plain and ``hvc-`` prefixed)."""
    names = sorted(_REGISTRY)
    return names + [f"hvc-{name}" for name in names]


def make_cc(name: str, mss: int = 1460, **kwargs) -> CongestionControl:
    """Instantiate a congestion controller by registry name.

    A ``hvc-`` prefix wraps the base algorithm in the channel-aware RTT
    interpreter of §3.2 (:class:`~repro.transport.cc.hvc_aware.HvcAware`).
    """
    base_name = name
    wrap = False
    if name.startswith("hvc-"):
        base_name = name[len("hvc-"):]
        wrap = True
    try:
        factory = _REGISTRY[base_name]
    except KeyError:
        known = ", ".join(list_ccs())
        raise TransportError(f"unknown congestion control {name!r}; known: {known}") from None
    cc = factory(mss=mss, **kwargs)
    if wrap:
        cc = HvcAware(cc)
    return cc


__all__ = [
    "AckSample",
    "CongestionControl",
    "Reno",
    "Cubic",
    "Bbr",
    "Bbr2",
    "Copa",
    "Vegas",
    "Vivace",
    "RequirementCC",
    "requirement_cc_kwargs",
    "HvcAware",
    "make_cc",
    "list_ccs",
]
