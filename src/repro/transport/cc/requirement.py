"""Requirement-class congestion control (Hercules, arXiv:2403.00590).

Hercules maps *what a flow needs* — not which algorithm its developer
happened to pick — onto transmission behaviour. The four classes of
:mod:`repro.steering.requirements` each get congestion "manners" to
match their channel preference:

* ``req-latency``     — delay-budget window: cwnd tracks the estimated
  BDP plus a small queueing allowance, so interactive RPCs never build
  deep queues; multiplicative backoff on loss.
* ``req-throughput``  — bulk transfers want the pipe full; delegates to
  CUBIC (the throughput-seeking default the fleet already runs).
* ``req-deadline``    — steady AIMD that grows faster than Reno (2
  segments/RTT) and is deliberately delay-blind: a deadline flow on the
  reliable channel pushes through queueing rather than yielding.
* ``req-background``  — LEDBAT-style scavenger: proportional decrease as
  queueing delay approaches a 25 ms target, halve on loss, tiny floor —
  it vacates the moment a foreground flow wants the capacity.

Each class also carries the HVC steering intent of its
:class:`~repro.steering.requirements.RequirementClass` so opening a
connection with ``requirement_cc_kwargs("latency")`` yields both the
controller *and* the flow priority the steering layer interprets.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.transport.cc.base import AckSample, CongestionControl, INITIAL_WINDOW_SEGMENTS
from repro.transport.cc.cubic import Cubic

#: Queueing allowance for the latency class (seconds on top of min RTT).
LATENCY_BUDGET = 0.005
#: LEDBAT-style queueing-delay target for the background class (seconds).
BACKGROUND_TARGET = 0.025
#: Background proportional-controller gain (fraction of cwnd adjusted per
#: ACK at full target error).
BACKGROUND_GAIN = 0.1
MIN_SEGMENTS = 2


class _EwmaBandwidth:
    """Small shared helper: smoothed delivery-rate estimate in bytes/s."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def update(self, sample: AckSample) -> None:
        if sample.delivery_rate is None:
            return
        rate = sample.delivery_rate / 8.0
        if sample.app_limited and rate <= self.value:
            return
        if self.value <= 0.0:
            self.value = rate
        else:
            self.value += 0.25 * (rate - self.value)


class RequirementCC(CongestionControl):
    """Congestion manners for one Hercules requirement class.

    ``class_name`` is one of ``latency``/``throughput``/``deadline``/
    ``background`` (validated against the steering catalogue).
    """

    def __init__(self, class_name: str, mss: int = 1460) -> None:
        super().__init__(mss)
        # Validate against the steering catalogue so cc and steering can
        # never disagree about what classes exist.
        from repro.steering.requirements import requirement_class

        self.rclass = requirement_class(class_name)
        self.class_name = self.rclass.name
        self.name = f"req-{self.class_name}"

        # Throughput delegates wholesale to CUBIC.
        self._delegate: Optional[CongestionControl] = (
            Cubic(mss=mss) if self.class_name == "throughput" else None
        )

        self._cwnd = float(INITIAL_WINDOW_SEGMENTS * mss)
        self._min_rtt: Optional[float] = None
        self._bw = _EwmaBandwidth()
        self._recovery_until = 0.0
        self._last_rtt: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def flow_priority(self) -> int:
        """The steering intent priority of this class."""
        return self.rclass.flow_priority

    def _floor(self) -> float:
        return float(MIN_SEGMENTS * self.mss)

    def _bdp_bytes(self) -> float:
        if self._bw.value <= 0 or self._min_rtt is None:
            return float(INITIAL_WINDOW_SEGMENTS * self.mss)
        return self._bw.value * self._min_rtt

    # ------------------------------------------------------------------
    def on_ack(self, sample: AckSample) -> None:
        if self._delegate is not None:
            self._delegate.on_ack(sample)
            return
        if sample.rtt is not None:
            self._last_rtt = sample.rtt
            if self._min_rtt is None or sample.rtt < self._min_rtt:
                self._min_rtt = sample.rtt
        self._bw.update(sample)

        name = self.class_name
        if name == "latency":
            # Track BDP + a fixed delay budget; no blind growth beyond it.
            if self._bw.value > 0 and self._min_rtt is not None:
                target = self._bw.value * (self._min_rtt + LATENCY_BUDGET)
                if self._cwnd < target:
                    self._cwnd = min(
                        target, self._cwnd + float(sample.newly_acked)
                    )
                else:
                    self._cwnd = max(target, self._floor())
            else:
                self._cwnd += float(sample.newly_acked)
        elif name == "deadline":
            # 2 segments per RTT, delay-blind.
            if self._cwnd > 0:
                self._cwnd += 2.0 * self.mss * sample.newly_acked / self._cwnd
        elif name == "background":
            # LEDBAT: proportional control on queueing delay vs target.
            if self._last_rtt is not None and self._min_rtt is not None:
                queueing = self._last_rtt - self._min_rtt
                error = (BACKGROUND_TARGET - queueing) / BACKGROUND_TARGET
                self._cwnd += (
                    BACKGROUND_GAIN
                    * error
                    * self.mss
                    * sample.newly_acked
                    / max(self._cwnd, float(self.mss))
                )
            else:
                self._cwnd += float(sample.newly_acked)
        self._cwnd = max(self._cwnd, self._floor())

    def on_loss(self, now: float, in_flight: int) -> None:
        if self._delegate is not None:
            self._delegate.on_loss(now, in_flight)
            return
        if now < self._recovery_until:
            return
        self._recovery_until = now + (self._last_rtt or 0.1)
        beta = {"latency": 0.7, "deadline": 0.7, "background": 0.5}[
            self.class_name
        ]
        self._cwnd = max(self._cwnd * beta, self._floor())

    def on_lost(self, now: float, lost_bytes: int, in_flight: int) -> None:
        if self._delegate is not None:
            self._delegate.on_lost(now, lost_bytes, in_flight)

    def on_timeout(self, now: float) -> None:
        if self._delegate is not None:
            self._delegate.on_timeout(now)
            return
        self._cwnd = self._floor()
        self._recovery_until = 0.0

    def on_sent(self, now: float, size_bytes: int, in_flight: int) -> None:
        if self._delegate is not None:
            self._delegate.on_sent(now, size_bytes, in_flight)

    # ------------------------------------------------------------------
    @property
    def cwnd_bytes(self) -> float:
        if self._delegate is not None:
            return self._delegate.cwnd_bytes
        return self._cwnd

    @property
    def pacing_rate_bps(self) -> Optional[float]:
        if self._delegate is not None:
            return self._delegate.pacing_rate_bps
        # Delay-sensitive classes pace to avoid self-inflicted bursts; the
        # deadline class stays window-driven (bursts are fine on the
        # reliable channel).
        if self.class_name in ("latency", "background") and self._bw.value > 0:
            headroom = 1.2 if self.class_name == "latency" else 1.0
            return self._bw.value * 8.0 * headroom
        return None


def requirement_cc_kwargs(class_name: str, mss: int = 1460) -> Dict[str, Any]:
    """Connection kwargs for a requirement-class flow: the controller plus
    the flow priority its steering intent implies."""
    cc = RequirementCC(class_name, mss=mss)
    return {"cc": cc, "flow_priority": cc.flow_priority, "mss": mss}
