"""PCC Vivace (Dong et al., NSDI 2018), simplified online-learning rate control.

Vivace sends at an explicit rate for one *monitor interval* (MI), computes a
utility

    U(r) = r^t  -  b · r · max(0, dRTT/dt)  -  c · r · loss_rate

from what happened during the MI, and moves the rate along the empirical
utility gradient.

The latency-gradient penalty is the term DChannel steering weaponizes
against it in Fig. 1a: alternating ~5 ms and ~50 ms RTT samples produce a
large positive dRTT/dt in many MIs, so the learned rate collapses to a
trickle (~1.5 Mbps in the paper).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.transport.cc.base import AckSample, CongestionControl

#: Utility exponent / penalty coefficients from the Vivace paper.
THROUGHPUT_EXPONENT = 0.9
LATENCY_COEFF = 900.0
LOSS_COEFF = 11.35

MIN_RATE_BPS = 0.2e6
MAX_RATE_BPS = 1e9
INITIAL_RATE_BPS = 3e6
#: Gradient step bounds as a fraction of the current rate per MI.
MAX_STEP_FRACTION = 0.12
MIN_MI = 0.01


class Vivace(CongestionControl):
    name = "vivace"

    def __init__(self, mss: int = 1460) -> None:
        super().__init__(mss)
        self.rate_bps = INITIAL_RATE_BPS
        self._mi_start = 0.0
        self._mi_rtts: List[Tuple[float, float]] = []  # (time, rtt)
        self._mi_acked = 0
        self._mi_losses = 0
        self._prev_rate: Optional[float] = None
        self._prev_utility: Optional[float] = None
        self._srtt = 0.05

    # ------------------------------------------------------------------
    def _mi_duration(self) -> float:
        return max(MIN_MI, 1.5 * self._srtt)

    def _utility(self, rate_mbps: float, rtt_gradient: float, loss_rate: float) -> float:
        throughput_term = max(rate_mbps, 1e-6) ** THROUGHPUT_EXPONENT
        latency_term = LATENCY_COEFF * rate_mbps * max(0.0, rtt_gradient)
        loss_term = LOSS_COEFF * rate_mbps * loss_rate
        return throughput_term - latency_term - loss_term

    def _finish_interval(self, now: float) -> None:
        if len(self._mi_rtts) >= 2:
            (t0, r0), (t1, r1) = self._mi_rtts[0], self._mi_rtts[-1]
            rtt_gradient = (r1 - r0) / max(t1 - t0, 1e-6)
        else:
            rtt_gradient = 0.0
        total = self._mi_acked + self._mi_losses
        loss_rate = self._mi_losses / total if total else 0.0
        utility = self._utility(self.rate_bps / 1e6, rtt_gradient, loss_rate)

        if self._prev_rate is not None and abs(self.rate_bps - self._prev_rate) > 1e-9:
            assert self._prev_utility is not None
            gradient = (utility - self._prev_utility) / (
                (self.rate_bps - self._prev_rate) / 1e6
            )
            step = 0.05e6 * gradient
        else:
            step = 0.02 * self.rate_bps  # probe upward to get a gradient

        max_step = MAX_STEP_FRACTION * self.rate_bps
        step = max(-max_step, min(max_step, step))
        self._prev_rate = self.rate_bps
        self._prev_utility = utility
        self.rate_bps = max(MIN_RATE_BPS, min(MAX_RATE_BPS, self.rate_bps + step))

        self._mi_start = now
        self._mi_rtts = []
        self._mi_acked = 0
        self._mi_losses = 0

    # ------------------------------------------------------------------
    def on_ack(self, sample: AckSample) -> None:
        if sample.rtt is not None:
            self._mi_rtts.append((sample.now, sample.rtt))
            self._srtt = 0.9 * self._srtt + 0.1 * sample.rtt
        self._mi_acked += sample.newly_acked
        if sample.now - self._mi_start >= self._mi_duration():
            self._finish_interval(sample.now)

    def on_loss(self, now: float, in_flight: int) -> None:
        self._mi_losses += self.mss

    def on_timeout(self, now: float) -> None:
        self.rate_bps = max(MIN_RATE_BPS, self.rate_bps / 2.0)

    @property
    def cwnd_bytes(self) -> float:
        # Rate-based: the window only prevents runaway inflight.
        return max(2.0 * self.mss, 2.0 * (self.rate_bps / 8.0) * max(self._srtt, 0.01))

    @property
    def pacing_rate_bps(self) -> Optional[float]:
        return self.rate_bps
