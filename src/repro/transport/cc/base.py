"""The congestion-control interface.

A controller is a pure control loop: the connection feeds it ACK/loss/send
events and reads back a congestion window (bytes) and an optional pacing
rate (bits/s). Controllers never touch the simulator directly, which keeps
them unit-testable with synthetic event streams.
"""

from __future__ import annotations

from typing import Optional

from repro._compat import hot_dataclass


@hot_dataclass
class AckSample:
    """Everything a controller may learn from one ACK event."""

    now: float
    #: RTT measured for the newest acked segment (Karn-filtered); None if
    #: this ACK yielded no valid sample.
    rtt: Optional[float]
    #: Bytes newly acknowledged by this ACK.
    newly_acked: int
    #: Sender's bytes in flight after processing this ACK.
    in_flight: int
    #: Delivery-rate sample (bits/s) for the newest acked segment, or None.
    delivery_rate: Optional[float]
    #: True if the sender was application-limited when the segment was sent.
    app_limited: bool = False
    #: Channel the acked data segment travelled on (echoed by the receiver).
    data_channel: Optional[int] = None
    #: Channel the ACK itself arrived on.
    ack_channel: Optional[int] = None
    #: Total bytes delivered on this connection so far.
    total_delivered: int = 0


class CongestionControl:
    """Base class; subclasses override the event hooks they care about."""

    #: Registry name; subclasses set this.
    name = "base"

    def __init__(self, mss: int = 1460) -> None:
        if mss <= 0:
            raise ValueError(f"mss must be positive, got {mss}")
        self.mss = mss

    # -- events ---------------------------------------------------------
    def on_ack(self, sample: AckSample) -> None:
        """An ACK arrived (possibly with a new RTT/delivery-rate sample)."""

    def on_loss(self, now: float, in_flight: int) -> None:
        """Loss inferred via duplicate ACKs / SACK (fast-retransmit class)."""

    def on_lost(self, now: float, lost_bytes: int, in_flight: int) -> None:
        """Bytes newly declared lost. Unlike :meth:`on_loss` (at most once
        per recovery window), this fires for every loss-detection batch with
        the byte count, so rate-based controllers can track per-round loss
        rates (BBRv2's 2% PROBE_UP cap)."""

    def on_timeout(self, now: float) -> None:
        """A retransmission timeout fired (severe congestion signal)."""

    def on_sent(self, now: float, size_bytes: int, in_flight: int) -> None:
        """A segment was handed to the network."""

    # -- outputs --------------------------------------------------------
    @property
    def cwnd_bytes(self) -> float:
        """Maximum bytes in flight the controller currently allows."""
        raise NotImplementedError

    @property
    def pacing_rate_bps(self) -> Optional[float]:
        """Pacing rate (bits/s), or None for pure window-based sending."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pacing = self.pacing_rate_bps
        paced = f" pace={pacing / 1e6:.1f}Mbps" if pacing else ""
        return f"<{type(self).__name__} cwnd={self.cwnd_bytes / self.mss:.1f}seg{paced}>"


INITIAL_WINDOW_SEGMENTS = 10
