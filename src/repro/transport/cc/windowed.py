"""O(1)-amortized windowed-maximum filter for rate samples.

BBR-family controllers keep a windowed max of delivery-rate samples (and
of ACK-aggregation excess). A naive ``max()`` over a deque of every
sample in the window is O(window) per query — and the window holds one
sample per ACK per round, so at WAN BDPs (hundreds of segments in
flight) the per-ACK cost blows up quadratically. The classic monotonic
deque gives amortized O(1) pushes, evictions and queries with identical
semantics: entries are kept strictly decreasing in value, the front is
always the window maximum, and a new sample pops every older entry it
dominates (those could never become the maximum again).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple


class WindowedMax:
    """Maximum of ``(tick, value)`` samples with ``tick >= horizon``.

    ``tick`` must be non-decreasing across pushes (BBR uses the round
    count). ``evict(horizon)`` drops samples older than the window;
    ``value`` reads the current maximum (0.0 when empty).
    """

    __slots__ = ("_samples",)

    def __init__(self) -> None:
        self._samples: Deque[Tuple[int, float]] = deque()

    def push(self, tick: int, value: float) -> None:
        samples = self._samples
        while samples and samples[-1][1] <= value:
            samples.pop()
        samples.append((tick, value))

    def evict(self, horizon: int) -> None:
        samples = self._samples
        while samples and samples[0][0] < horizon:
            samples.popleft()

    @property
    def value(self) -> float:
        return self._samples[0][1] if self._samples else 0.0

    def clear(self) -> None:
        self._samples.clear()

    def __bool__(self) -> bool:
        return bool(self._samples)

    def __len__(self) -> int:
        return len(self._samples)
