"""BBR v2 and BBRv2+ (delay-aware probing), simplified but state-complete.

BBR v2 (Cardwell et al., IETF drafts 2019-2021) keeps v1's model — a
windowed-max bandwidth filter, a windowed-min RTT filter, STARTUP / DRAIN
/ PROBE_BW / PROBE_RTT — but bounds it with explicit *inflight limits*
learned from loss:

* ``inflight_hi`` — a hard ceiling on bytes in flight, set where loss
  exceeded :data:`LOSS_THRESH` (2%) and only raised again by deliberate
  PROBE_UP rounds. This is what makes v2 coexist with loss-based CCAs:
  v1 simply ignored loss and bulldozed CUBIC out of shallow buffers.
* ``inflight_lo`` / ``bw_lo`` — short-term conservative bounds applied
  during a lossy round (the AIMD-style "beta" response), reset when the
  next PROBE_BW:REFILL deliberately re-fills the pipe.
* PROBE_BW becomes a four-phase cycle DOWN → CRUISE → REFILL → UP: drain
  below the ceiling, cruise with headroom, refill to the estimated BDP,
  then probe above it — capping the probe the moment the loss rate of the
  round crosses the threshold.

BBRv2+ (Yang et al., arXiv:2107.03057) adds **delay-aware bandwidth
probing**: PROBE_UP also watches the RTT sample against ``min_rtt`` and
aborts the probe when delay inflates past :data:`DELAY_PROBE_TOLERANCE`
*before* loss appears, and backs the probing cadence off after an aborted
probe. That keeps queues short on bufferbloated paths (where v2 only
stops at 2% loss) without giving up bandwidth convergence — and it is
the modern algorithm whose interaction with HVC steering the paper
leaves open: under DChannel the min-RTT filter still latches onto
URLLC's ~5 ms samples, so the delay-aware abort fires early and the
probe cadence stretches (measured in the ``cc-matrix`` experiment).
"""

from __future__ import annotations

from typing import Optional

from repro.transport.cc.base import AckSample, CongestionControl, INITIAL_WINDOW_SEGMENTS
from repro.transport.cc.windowed import WindowedMax

# -- gains (Linux bbr2 values) ----------------------------------------
STARTUP_GAIN = 2.885  # 2/ln(2)
DRAIN_GAIN = 1.0 / STARTUP_GAIN
PROBE_DOWN_GAIN = 0.75
CRUISE_GAIN = 1.0
PROBE_UP_GAIN = 1.25
CWND_GAIN = 2.0

# -- filters -----------------------------------------------------------
MIN_RTT_WINDOW = 10.0  # seconds
PROBE_RTT_DURATION = 0.2  # seconds
BTLBW_WINDOW_ROUNDS = 10
STARTUP_GROWTH_TARGET = 1.25
STARTUP_FULL_BW_ROUNDS = 3
MIN_CWND_SEGMENTS = 4

# -- v2 loss model -----------------------------------------------------
#: Loss rate (lost / (delivered + lost) per round) above which a PROBE_UP
#: is declared over-aggressive and ``inflight_hi`` is capped.
LOSS_THRESH = 0.02
#: Multiplicative cut applied to the short-term bounds on a lossy round.
BETA = 0.7
#: Fraction of ``inflight_hi`` targeted while cruising (leave headroom
#: for the other flows sharing the bottleneck).
HEADROOM = 0.85
#: Seconds between bandwidth probes (Linux: 2-3 s randomized; we keep it
#: deterministic for reproducibility).
PROBE_INTERVAL = 2.0

# -- BBRv2+ delay-aware probing ----------------------------------------
#: Abort a bandwidth probe when an RTT sample exceeds
#: ``min_rtt * (1 + DELAY_PROBE_TOLERANCE)`` — the queue is already
#: building, no need to push to loss.
DELAY_PROBE_TOLERANCE = 0.25
#: After a delay-aborted probe the next probe waits this factor longer
#: (up to MAX_PROBE_INTERVAL); a successful probe resets the cadence.
PROBE_BACKOFF = 2.0
MAX_PROBE_INTERVAL = 8.0


class Bbr2(CongestionControl):
    """BBR v2; pass ``delay_aware=True`` (the ``"bbr2+"`` registry name)
    for BBRv2+'s delay-aware probing."""

    name = "bbr2"

    STARTUP = "startup"
    DRAIN = "drain"
    PROBE_RTT = "probe_rtt"
    # PROBE_BW sub-phases (each is a top-level state here; ``in_probe_bw``
    # groups them).
    PROBE_DOWN = "probe_down"
    CRUISE = "cruise"
    REFILL = "refill"
    PROBE_UP = "probe_up"

    _PROBE_BW_STATES = frozenset((PROBE_DOWN, CRUISE, REFILL, PROBE_UP))

    def __init__(self, mss: int = 1460, delay_aware: bool = False) -> None:
        super().__init__(mss)
        self.delay_aware = delay_aware
        if delay_aware:
            self.name = "bbr2+"
        self.state = self.STARTUP

        # Bandwidth filter: (round, bytes/s) windowed max, as in v1
        # (monotonic deque, O(1) queries).
        self._bw_samples = WindowedMax()
        # RTT filter.
        self._min_rtt: Optional[float] = None
        self._min_rtt_stamp = 0.0

        # Round accounting: a round ends when total_delivered passes the
        # level recorded at the round's start plus the flight size then.
        self._round = 0
        self._round_target = 0
        self._round_delivered = 0
        self._round_lost = 0
        self._round_max_inflight = 0

        # Startup full-bandwidth detection.
        self._full_bw = 0.0
        self._full_bw_count = 0

        # ACK-aggregation compensation (Linux "extra_acked", kept from
        # v1): when deliveries arrive in bursts — aggregating links, or
        # the resequencing shim batching cross-channel deliveries — the
        # windowed max of delivered-beyond-expected bytes is added to
        # cwnd so throughput does not collapse to the BDP estimate. On
        # HVC paths this also softens min-RTT poisoning (a URLLC-floored
        # min_rtt understates the eMBB BDP).
        self._extra_acked_start = 0.0
        self._extra_acked_delivered = 0
        self._extra_acked_samples = WindowedMax()

        # v2 inflight bounds. ``inf`` means "not yet learned".
        self.inflight_hi = float("inf")
        self.inflight_lo = float("inf")
        self.bw_lo = float("inf")
        #: True while the current round has already triggered the loss
        #: response (one multiplicative cut per round, like one cwnd
        #: reduction per window of loss).
        self._loss_round = False

        # PROBE_BW cycle bookkeeping.
        self._cruise_until = 0.0
        self._probe_interval = PROBE_INTERVAL
        self._probe_up_rounds = 0
        #: Counts delay-aborted probes (BBRv2+), exposed for experiments.
        self.delay_probe_aborts = 0

        # PROBE_RTT bookkeeping.
        self._probe_rtt_done_at: Optional[float] = None
        self._state_before_probe = self.CRUISE
        self._in_flight = 0

    # ------------------------------------------------------------------
    # Filters
    # ------------------------------------------------------------------
    @property
    def btlbw_bytes_per_s(self) -> float:
        """Windowed-max bandwidth estimate (bytes/s); 0 if unknown."""
        return self._bw_samples.value

    @property
    def min_rtt(self) -> Optional[float]:
        return self._min_rtt

    @property
    def in_probe_bw(self) -> bool:
        return self.state in self._PROBE_BW_STATES

    def _update_bw(self, sample: AckSample) -> None:
        if sample.delivery_rate is None:
            return
        rate_bytes = sample.delivery_rate / 8.0
        if sample.app_limited and rate_bytes <= self.btlbw_bytes_per_s:
            return  # app-limited samples may only raise the estimate
        if self.state == self.PROBE_DOWN and rate_bytes <= self.btlbw_bytes_per_s:
            # BBRv2+ bandwidth compensation: samples taken while we are
            # deliberately draining under-report the path; let them raise
            # the filter, never drag it down mid-drain.
            return
        self._bw_samples.push(self._round, rate_bytes)
        self._bw_samples.evict(self._round - BTLBW_WINDOW_ROUNDS)

    def _update_min_rtt(self, sample: AckSample) -> None:
        if sample.rtt is None:
            return
        expired = sample.now - self._min_rtt_stamp > MIN_RTT_WINDOW
        if self._min_rtt is None or sample.rtt <= self._min_rtt:
            self._min_rtt = sample.rtt
            self._min_rtt_stamp = sample.now
        elif expired:
            self._enter_probe_rtt(sample.now)
            self._min_rtt = sample.rtt
            self._min_rtt_stamp = sample.now

    def _update_extra_acked(self, sample: AckSample) -> None:
        elapsed = sample.now - self._extra_acked_start
        self._extra_acked_delivered += sample.newly_acked
        expected = self.btlbw_bytes_per_s * elapsed
        extra = self._extra_acked_delivered - expected
        if extra <= 0 or elapsed > 1.0:
            self._extra_acked_start = sample.now
            self._extra_acked_delivered = sample.newly_acked
            extra = max(0.0, float(sample.newly_acked))
        self._extra_acked_samples.push(self._round, extra)
        self._extra_acked_samples.evict(self._round - BTLBW_WINDOW_ROUNDS)

    @property
    def extra_acked_bytes(self) -> float:
        return self._extra_acked_samples.value

    # ------------------------------------------------------------------
    # Round + loss model
    # ------------------------------------------------------------------
    def _round_loss_rate(self) -> float:
        total = self._round_delivered + self._round_lost
        if total <= 0:
            return 0.0
        return self._round_lost / total

    def _apply_loss_bounds(self, in_flight: int) -> None:
        """The v2 loss response: cap the ceiling, cut the short-term bounds.

        Called at most once per round (the ``_loss_round`` latch), when the
        round's loss rate crossed :data:`LOSS_THRESH`.
        """
        self._loss_round = True
        floor = MIN_CWND_SEGMENTS * self.mss
        # The ceiling is where we actually were when loss got excessive —
        # probing above it has been empirically refuted.
        measured = max(in_flight, self._round_max_inflight)
        self.inflight_hi = max(float(floor), min(self.inflight_hi, float(measured)))
        # Short-term conservative bounds for the rest of the episode.
        base = measured if measured > 0 else self._bdp_bytes()
        self.inflight_lo = max(float(floor), BETA * base)
        bw = self.btlbw_bytes_per_s
        if bw > 0:
            self.bw_lo = max(bw * BETA, float(self.mss))
        if self.state == self.PROBE_UP:
            self._finish_probe(success=False, now=None)
        elif self.state == self.STARTUP:
            # v2 exits STARTUP on excessive loss, not only on bw plateau.
            self.state = self.DRAIN

    def on_lost(self, now: float, lost_bytes: int, in_flight: int) -> None:
        """Segments were declared lost (SACK/dup-ACK inference)."""
        self._round_lost += lost_bytes
        self._in_flight = in_flight
        if not self._loss_round and self._round_loss_rate() >= LOSS_THRESH:
            self._apply_loss_bounds(in_flight)

    def on_loss(self, now: float, in_flight: int) -> None:
        """Once-per-window loss signal; byte accounting arrives via
        :meth:`on_lost`, which the connection fires alongside this."""

    def _end_round(self, sample: AckSample) -> None:
        if not self._loss_round and self._round_loss_rate() >= LOSS_THRESH:
            self._apply_loss_bounds(sample.in_flight)
        if self.state == self.STARTUP:
            self._check_startup_done()
        elif self.state == self.REFILL:
            # One full round re-filling the pipe; now probe above it.
            self._enter_probe_up()
        elif self.state == self.PROBE_UP:
            self._probe_up_rounds += 1
            self._raise_inflight_hi()
            if self._probe_up_rounds >= 2:
                # Held 1.25x for a full round without tripping the loss
                # or delay gates: the path absorbed it.
                self._finish_probe(success=True, now=sample.now)
        if not self._loss_round:
            # A clean round retires the short-term bounds gradually.
            self.inflight_lo = float("inf")
            self.bw_lo = float("inf")
        self._loss_round = False
        self._round_delivered = 0
        self._round_lost = 0
        self._round_max_inflight = 0

    def _raise_inflight_hi(self) -> None:
        if self.inflight_hi == float("inf"):
            return
        # Raise the ceiling to what this probe round actually put in
        # flight (plus one segment of growth room).
        reached = max(
            self._round_max_inflight, int(PROBE_UP_GAIN * self._bdp_bytes())
        )
        if reached + self.mss > self.inflight_hi:
            self.inflight_hi = float(reached + self.mss)

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def _check_startup_done(self) -> None:
        bw = self.btlbw_bytes_per_s
        if bw >= self._full_bw * STARTUP_GROWTH_TARGET:
            self._full_bw = bw
            self._full_bw_count = 0
            return
        self._full_bw_count += 1
        if self._full_bw_count >= STARTUP_FULL_BW_ROUNDS:
            self.state = self.DRAIN

    def _enter_probe_rtt(self, now: float) -> None:
        if self.state != self.PROBE_RTT:
            if self.in_probe_bw:
                self._state_before_probe = self.CRUISE
            elif self.state == self.DRAIN:
                self._state_before_probe = self.CRUISE
            else:
                self._state_before_probe = self.state
            self.state = self.PROBE_RTT
            self._probe_rtt_done_at = now + PROBE_RTT_DURATION

    def _enter_cruise(self, now: float) -> None:
        self.state = self.CRUISE
        self._cruise_until = now + self._probe_interval

    def _enter_probe_up(self) -> None:
        self.state = self.PROBE_UP
        self._probe_up_rounds = 0

    def _finish_probe(self, success: bool, now: Optional[float]) -> None:
        """Leave PROBE_UP (or REFILL) for PROBE_DOWN, adapting the cadence."""
        if success:
            self._probe_interval = PROBE_INTERVAL
        else:
            self._probe_interval = min(
                self._probe_interval * PROBE_BACKOFF, MAX_PROBE_INTERVAL
            )
        self.state = self.PROBE_DOWN

    def _delay_probe_gate(self, sample: AckSample) -> bool:
        """BBRv2+: abort the probe when delay inflates before loss does."""
        if not self.delay_aware or sample.rtt is None or self._min_rtt is None:
            return False
        return sample.rtt > self._min_rtt * (1.0 + DELAY_PROBE_TOLERANCE)

    def on_ack(self, sample: AckSample) -> None:
        self._in_flight = sample.in_flight
        if sample.in_flight > self._round_max_inflight:
            self._round_max_inflight = sample.in_flight
        self._round_delivered += sample.newly_acked
        self._update_bw(sample)
        self._update_min_rtt(sample)
        self._update_extra_acked(sample)

        if sample.total_delivered >= self._round_target:
            self._round += 1
            self._round_target = sample.total_delivered + max(
                sample.in_flight, self.mss
            )
            self._end_round(sample)

        state = self.state
        if state == self.DRAIN:
            if sample.in_flight <= self._bdp_bytes():
                self._enter_cruise(sample.now)
        elif state == self.PROBE_DOWN:
            if sample.in_flight <= self._cruise_target():
                self._enter_cruise(sample.now)
        elif state == self.CRUISE:
            if sample.now >= self._cruise_until:
                # Deliberate probe: reset the short-term bounds and refill.
                self.inflight_lo = float("inf")
                self.bw_lo = float("inf")
                self.state = self.REFILL
        elif state == self.PROBE_UP:
            if self._delay_probe_gate(sample):
                self.delay_probe_aborts += 1
                self._finish_probe(success=False, now=sample.now)
        elif state == self.PROBE_RTT:
            assert self._probe_rtt_done_at is not None
            if sample.now >= self._probe_rtt_done_at:
                self._min_rtt_stamp = sample.now
                restored = self._state_before_probe
                if restored in self._PROBE_BW_STATES:
                    self._enter_cruise(sample.now)
                else:
                    self.state = restored

    def on_sent(self, now: float, size_bytes: int, in_flight: int) -> None:
        self._in_flight = in_flight
        if in_flight > self._round_max_inflight:
            self._round_max_inflight = in_flight

    def on_timeout(self, now: float) -> None:
        """Conservative restart; the learned ceiling survives the RTO."""
        self._bw_samples.clear()
        self._full_bw = 0.0
        self._full_bw_count = 0
        floor = MIN_CWND_SEGMENTS * self.mss
        self.inflight_lo = max(float(floor), BETA * self._bdp_bytes())
        self.state = self.STARTUP

    # ------------------------------------------------------------------
    # Outputs
    # ------------------------------------------------------------------
    def _bdp_bytes(self) -> float:
        bw = min(self.btlbw_bytes_per_s, self.bw_lo)
        rtt = self._min_rtt
        if bw <= 0 or bw == float("inf") or rtt is None:
            return float(INITIAL_WINDOW_SEGMENTS * self.mss)
        return bw * rtt

    def _cruise_target(self) -> float:
        """Inflight level to cruise at: BDP, but with headroom under the
        learned ceiling so competing flows keep a working share."""
        target = self._bdp_bytes()
        if self.inflight_hi != float("inf"):
            target = min(target, HEADROOM * self.inflight_hi)
        return max(target, MIN_CWND_SEGMENTS * self.mss)

    @property
    def pacing_gain(self) -> float:
        state = self.state
        if state == self.STARTUP:
            return STARTUP_GAIN
        if state == self.DRAIN:
            return DRAIN_GAIN
        if state == self.PROBE_DOWN:
            return PROBE_DOWN_GAIN
        if state == self.PROBE_UP:
            return PROBE_UP_GAIN
        return CRUISE_GAIN  # CRUISE, REFILL, PROBE_RTT

    @property
    def cwnd_bytes(self) -> float:
        floor = float(MIN_CWND_SEGMENTS * self.mss)
        if self.state == self.PROBE_RTT:
            cwnd = floor
        else:
            cwnd = CWND_GAIN * self._bdp_bytes() + self.extra_acked_bytes
            if self.state == self.CRUISE:
                cwnd = min(cwnd, max(self._cruise_target() * CWND_GAIN, floor))
            if self._loss_round and self.inflight_lo != float("inf"):
                cwnd = min(cwnd, self.inflight_lo)
        if self.inflight_hi != float("inf"):
            cwnd = min(cwnd, self.inflight_hi)
        return max(cwnd, floor)

    @property
    def pacing_rate_bps(self) -> Optional[float]:
        bw = min(self.btlbw_bytes_per_s, self.bw_lo)
        if bw <= 0 or bw == float("inf"):
            return None  # pre-estimate: window-limited startup
        return self.pacing_gain * bw * 8.0
