"""TCP Vegas (Brakmo & Peterson, 1994).

Delay-based: compares the *expected* throughput ``cwnd / baseRTT`` with the
*actual* throughput ``cwnd / RTT`` once per round trip, and nudges the
window so the difference stays between ``alpha`` and ``beta`` segments.

Under channel steering, accelerated segments produce a tiny baseRTT while
bulk data sees the high-bandwidth channel's larger RTT, so the measured
"diff" looks like an enormous standing queue and Vegas pins its window near
the minimum — the ~2.7 Mbps collapse of Fig. 1a.
"""

from __future__ import annotations

from typing import Optional

from repro.transport.cc.base import AckSample, CongestionControl, INITIAL_WINDOW_SEGMENTS

ALPHA_SEGMENTS = 2.0
BETA_SEGMENTS = 4.0
GAMMA_SEGMENTS = 1.0  # slow-start exit threshold


class Vegas(CongestionControl):
    name = "vegas"

    def __init__(self, mss: int = 1460) -> None:
        super().__init__(mss)
        self._cwnd = float(INITIAL_WINDOW_SEGMENTS * mss)
        self._base_rtt: Optional[float] = None
        self._rtt_sum = 0.0
        self._rtt_count = 0
        self._next_adjust = 0.0
        self._in_slow_start = True

    def on_ack(self, sample: AckSample) -> None:
        if sample.rtt is not None:
            if self._base_rtt is None or sample.rtt < self._base_rtt:
                self._base_rtt = sample.rtt
            self._rtt_sum += sample.rtt
            self._rtt_count += 1
        if self._base_rtt is None or sample.now < self._next_adjust:
            return
        if self._rtt_count == 0:
            return
        avg_rtt = self._rtt_sum / self._rtt_count
        self._rtt_sum = 0.0
        self._rtt_count = 0
        self._next_adjust = sample.now + avg_rtt

        cwnd_segments = self._cwnd / self.mss
        diff = cwnd_segments * (avg_rtt - self._base_rtt) / avg_rtt
        if self._in_slow_start:
            if diff > GAMMA_SEGMENTS:
                self._in_slow_start = False
                self._cwnd = max(self._cwnd - self.mss, 2.0 * self.mss)
            else:
                self._cwnd *= 2.0  # Vegas doubles every *other* RTT; we
                # adjust once per RTT so doubling here matches its pace.
            return
        if diff < ALPHA_SEGMENTS:
            self._cwnd += self.mss
        elif diff > BETA_SEGMENTS:
            self._cwnd -= self.mss

    def on_loss(self, now: float, in_flight: int) -> None:
        self._cwnd = max(2.0 * self.mss, self._cwnd * 0.75)
        self._in_slow_start = False

    def on_timeout(self, now: float) -> None:
        self._cwnd = float(2 * self.mss)
        self._in_slow_start = False

    @property
    def cwnd_bytes(self) -> float:
        return max(self._cwnd, 2.0 * self.mss)

    @property
    def base_rtt(self) -> Optional[float]:
        return self._base_rtt
