"""The paper's §3.2 proposal: congestion control that knows about HVCs.

:class:`HvcAware` wraps any base controller and *re-interprets RTT samples
per channel pair* before the base algorithm sees them. For each observed
(data-channel, ack-channel) pair it tracks the propagation floor (the
windowed minimum RTT on that pair); an incoming sample is translated to

    adjusted_rtt = primary_floor + (rtt - pair_floor)

i.e. the *queueing excursion* measured on whatever pair the packet actually
took, re-based onto the floor of the **primary pair** (the pair carrying the
most acked bytes recently). The base CCA then sees a unimodal RTT process:
steering a probe or ACK onto URLLC no longer masquerades as the queue
draining, and eMBB queueing no longer masquerades as congestion onset after
a URLLC-flavoured minimum.

This is deliberately minimal — one could do much more with explicit
per-channel sub-controllers — but it is exactly the "reconcile the control
loops" fix the paper sketches, and it restores most of BBR's throughput in
the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.transport.cc.base import AckSample, CongestionControl

#: Forget a pair's byte counts with this decay per sample, so the primary
#: pair tracks the recent traffic mix.
BYTES_DECAY = 0.999

PairKey = Tuple[Optional[int], Optional[int]]


class HvcAware(CongestionControl):
    """Channel-aware RTT interpretation around a base controller."""

    def __init__(self, base: CongestionControl) -> None:
        super().__init__(base.mss)
        self.base = base
        self.name = f"hvc-{base.name}"
        self._pair_floor: Dict[PairKey, float] = {}
        self._pair_bytes: Dict[PairKey, float] = {}

    # ------------------------------------------------------------------
    def _observe(self, sample: AckSample) -> Optional[float]:
        if sample.rtt is None:
            return None
        pair: PairKey = (sample.data_channel, sample.ack_channel)
        floor = self._pair_floor.get(pair)
        if floor is None or sample.rtt < floor:
            self._pair_floor[pair] = sample.rtt
        for key in self._pair_bytes:
            self._pair_bytes[key] *= BYTES_DECAY
        self._pair_bytes[pair] = self._pair_bytes.get(pair, 0.0) + sample.newly_acked
        return self._adjusted_rtt(sample.rtt, pair)

    def _primary_pair(self) -> Optional[PairKey]:
        if not self._pair_bytes:
            return None
        return max(self._pair_bytes, key=self._pair_bytes.get)

    def _adjusted_rtt(self, rtt: float, pair: PairKey) -> float:
        primary = self._primary_pair()
        if primary is None or primary == pair:
            return rtt
        pair_floor = self._pair_floor.get(pair)
        primary_floor = self._pair_floor.get(primary)
        if pair_floor is None or primary_floor is None:
            return rtt
        queueing = max(0.0, rtt - pair_floor)
        return primary_floor + queueing

    # ------------------------------------------------------------------
    # Delegated interface
    # ------------------------------------------------------------------
    def on_ack(self, sample: AckSample) -> None:
        adjusted = self._observe(sample)
        self.base.on_ack(replace(sample, rtt=adjusted))

    def on_loss(self, now: float, in_flight: int) -> None:
        self.base.on_loss(now, in_flight)

    def on_lost(self, now: float, lost_bytes: int, in_flight: int) -> None:
        self.base.on_lost(now, lost_bytes, in_flight)

    def on_timeout(self, now: float) -> None:
        self.base.on_timeout(now)

    def on_sent(self, now: float, size_bytes: int, in_flight: int) -> None:
        self.base.on_sent(now, size_bytes, in_flight)

    @property
    def cwnd_bytes(self) -> float:
        return self.base.cwnd_bytes

    @property
    def pacing_rate_bps(self) -> Optional[float]:
        return self.base.pacing_rate_bps

    @property
    def channel_floors(self) -> Dict[PairKey, float]:
        """Observed per-pair propagation floors (for tests/inspection)."""
        return dict(self._pair_floor)
