"""BBR v1 (Cardwell et al., 2017), simplified but state-complete.

The model keeps the pieces Fig. 1 depends on:

* a windowed-max **bottleneck bandwidth** filter over delivery-rate samples;
* a windowed-min **RTT** filter with the 10 s expiry and PROBE_RTT drain —
  the behaviour visible at the 10 s mark of Fig. 1a/1b;
* STARTUP / DRAIN / PROBE_BW pacing-gain cycling;
* inflight capped at ``cwnd_gain × BtlBw × RTprop``.

Under DChannel steering the min-RTT filter latches onto URLLC's ~5 ms
samples while data actually rides the ~50 ms eMBB path, so the BDP — and
with it throughput — is underestimated by roughly RTprop(urllc)/RTT(embb).
That emergent failure is the point of the reproduction.
"""

from __future__ import annotations

from typing import Optional

from repro.transport.cc.base import AckSample, CongestionControl, INITIAL_WINDOW_SEGMENTS
from repro.transport.cc.windowed import WindowedMax

STARTUP_GAIN = 2.885  # 2/ln(2)
DRAIN_GAIN = 1.0 / STARTUP_GAIN
PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
CWND_GAIN = 2.0
MIN_RTT_WINDOW = 10.0  # seconds
PROBE_RTT_DURATION = 0.2  # seconds
BTLBW_WINDOW_ROUNDS = 10
STARTUP_GROWTH_TARGET = 1.25
STARTUP_FULL_BW_ROUNDS = 3
MIN_CWND_SEGMENTS = 4


class Bbr(CongestionControl):
    name = "bbr"

    STARTUP = "startup"
    DRAIN = "drain"
    PROBE_BW = "probe_bw"
    PROBE_RTT = "probe_rtt"

    def __init__(self, mss: int = 1460) -> None:
        super().__init__(mss)
        self.state = self.STARTUP
        # Bandwidth filter: (round, bytes_per_second) samples, max over the
        # last BTLBW_WINDOW_ROUNDS rounds (monotonic deque, O(1) queries).
        self._bw_samples = WindowedMax()
        self._round = 0
        self._round_delivered_target = 0
        # RTT filter: (time, rtt) minima within MIN_RTT_WINDOW.
        self._min_rtt: Optional[float] = None
        self._min_rtt_stamp = 0.0
        # Startup full-bandwidth detection (evaluated once per round).
        self._full_bw = 0.0
        self._full_bw_count = 0
        self._last_round_checked = -1
        # Linux BBR's ACK-aggregation compensation ("extra_acked"): when
        # ACKs arrive in bursts (aggregating links, or a resequencing shim
        # batching cross-channel deliveries), delivered bytes transiently
        # exceed btlbw × elapsed; the windowed max of that excess is added
        # to cwnd so throughput does not collapse to the BDP estimate.
        self._extra_acked_start = 0.0
        self._extra_acked_delivered = 0
        self._extra_acked_samples = WindowedMax()
        # PROBE_BW gain cycling.
        self._cycle_index = 0
        self._cycle_stamp = 0.0
        # PROBE_RTT bookkeeping.
        self._probe_rtt_done_at: Optional[float] = None
        self._state_before_probe = self.PROBE_BW
        self._in_flight = 0

    # ------------------------------------------------------------------
    # Filters
    # ------------------------------------------------------------------
    @property
    def btlbw_bytes_per_s(self) -> float:
        """Current bottleneck-bandwidth estimate (bytes/s); 0 if unknown."""
        return self._bw_samples.value

    @property
    def min_rtt(self) -> Optional[float]:
        return self._min_rtt

    def _update_bw(self, sample: AckSample) -> None:
        if sample.delivery_rate is None:
            return
        rate_bytes = sample.delivery_rate / 8.0
        if sample.app_limited and rate_bytes <= self.btlbw_bytes_per_s:
            return  # app-limited samples may only raise the estimate
        # Advance the round counter roughly once per window of delivered data.
        if sample.total_delivered >= self._round_delivered_target:
            self._round += 1
            self._round_delivered_target = sample.total_delivered + max(
                self._in_flight, self.mss
            )
        self._bw_samples.push(self._round, rate_bytes)
        self._bw_samples.evict(self._round - BTLBW_WINDOW_ROUNDS)

    def _update_min_rtt(self, sample: AckSample) -> None:
        if sample.rtt is None:
            return
        expired = sample.now - self._min_rtt_stamp > MIN_RTT_WINDOW
        if self._min_rtt is None or sample.rtt <= self._min_rtt:
            self._min_rtt = sample.rtt
            self._min_rtt_stamp = sample.now
        elif expired:
            # The 10 s window lapsed without a fresh minimum: drain the pipe
            # (PROBE_RTT) and restart the filter from the current sample.
            self._enter_probe_rtt(sample.now)
            self._min_rtt = sample.rtt
            self._min_rtt_stamp = sample.now

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def _enter_probe_rtt(self, now: float) -> None:
        if self.state != self.PROBE_RTT:
            self._state_before_probe = (
                self.state if self.state != self.DRAIN else self.PROBE_BW
            )
            self.state = self.PROBE_RTT
            self._probe_rtt_done_at = now + PROBE_RTT_DURATION

    def _check_startup_done(self) -> None:
        bw = self.btlbw_bytes_per_s
        if bw >= self._full_bw * STARTUP_GROWTH_TARGET:
            self._full_bw = bw
            self._full_bw_count = 0
            return
        self._full_bw_count += 1
        if self._full_bw_count >= STARTUP_FULL_BW_ROUNDS:
            self.state = self.DRAIN

    def _advance_cycle(self, now: float) -> None:
        interval = self._min_rtt if self._min_rtt is not None else 0.01
        if now - self._cycle_stamp >= interval:
            self._cycle_stamp = now
            self._cycle_index = (self._cycle_index + 1) % len(PROBE_BW_GAINS)

    def _update_extra_acked(self, sample: AckSample) -> None:
        elapsed = sample.now - self._extra_acked_start
        self._extra_acked_delivered += sample.newly_acked
        expected = self.btlbw_bytes_per_s * elapsed
        extra = self._extra_acked_delivered - expected
        if extra <= 0 or elapsed > 1.0:
            self._extra_acked_start = sample.now
            self._extra_acked_delivered = sample.newly_acked
            extra = max(0.0, float(sample.newly_acked))
        self._extra_acked_samples.push(self._round, extra)
        self._extra_acked_samples.evict(self._round - BTLBW_WINDOW_ROUNDS)

    @property
    def extra_acked_bytes(self) -> float:
        return self._extra_acked_samples.value

    def on_ack(self, sample: AckSample) -> None:
        self._in_flight = sample.in_flight
        self._update_bw(sample)
        self._update_min_rtt(sample)
        self._update_extra_acked(sample)
        if self.state == self.STARTUP and self._round != self._last_round_checked:
            self._last_round_checked = self._round
            self._check_startup_done()
        elif self.state == self.DRAIN:
            if sample.in_flight <= self._bdp_bytes():
                self.state = self.PROBE_BW
                self._cycle_stamp = sample.now
        elif self.state == self.PROBE_BW:
            self._advance_cycle(sample.now)
        elif self.state == self.PROBE_RTT:
            assert self._probe_rtt_done_at is not None
            if sample.now >= self._probe_rtt_done_at:
                self._min_rtt_stamp = sample.now  # window refreshed
                self.state = self._state_before_probe
                self._cycle_stamp = sample.now

    def on_sent(self, now: float, size_bytes: int, in_flight: int) -> None:
        self._in_flight = in_flight

    def on_loss(self, now: float, in_flight: int) -> None:
        """BBR v1 mostly ignores isolated loss; no window reduction."""

    def on_timeout(self, now: float) -> None:
        """Conservative restart after an RTO (mirrors cwnd collapse)."""
        self._bw_samples.clear()
        self._full_bw = 0.0
        self._full_bw_count = 0
        self.state = self.STARTUP

    # ------------------------------------------------------------------
    # Outputs
    # ------------------------------------------------------------------
    def _bdp_bytes(self) -> float:
        bw = self.btlbw_bytes_per_s
        rtt = self._min_rtt
        if bw <= 0 or rtt is None:
            return float(INITIAL_WINDOW_SEGMENTS * self.mss)
        return bw * rtt

    @property
    def pacing_gain(self) -> float:
        if self.state == self.STARTUP:
            return STARTUP_GAIN
        if self.state == self.DRAIN:
            return DRAIN_GAIN
        if self.state == self.PROBE_RTT:
            return 1.0
        return PROBE_BW_GAINS[self._cycle_index]

    @property
    def cwnd_bytes(self) -> float:
        if self.state == self.PROBE_RTT:
            return float(MIN_CWND_SEGMENTS * self.mss)
        cwnd = CWND_GAIN * self._bdp_bytes() + self.extra_acked_bytes
        return max(cwnd, MIN_CWND_SEGMENTS * self.mss)

    @property
    def pacing_rate_bps(self) -> Optional[float]:
        bw = self.btlbw_bytes_per_s
        if bw <= 0:
            return None  # pre-estimate: window-limited startup
        return self.pacing_gain * bw * 8.0
