"""TCP CUBIC (Ha, Rhee, Xu 2008; RFC 8312).

Loss-based: the window follows a cubic function of time since the last
reduction, anchored at the pre-loss window. Being (almost) delay-blind is
exactly why CUBIC is the one CCA in Fig. 1a that fills the high-bandwidth
channel despite DChannel's RTT scrambling.
"""

from __future__ import annotations

from repro.transport.cc.base import AckSample, CongestionControl, INITIAL_WINDOW_SEGMENTS

#: RFC 8312 constants.
C_SCALING = 0.4
BETA = 0.7


class Cubic(CongestionControl):
    name = "cubic"

    def __init__(self, mss: int = 1460) -> None:
        super().__init__(mss)
        self._cwnd = float(INITIAL_WINDOW_SEGMENTS * mss)
        self._ssthresh = float("inf")
        self._w_max = 0.0  # segments
        self._epoch_start: float = -1.0
        self._k = 0.0
        self._last_loss_time = -1.0
        self._min_rtt = 0.1

    # ------------------------------------------------------------------
    def _cwnd_segments(self) -> float:
        return self._cwnd / self.mss

    def on_ack(self, sample: AckSample) -> None:
        if sample.newly_acked <= 0:
            return
        if sample.rtt is not None:
            self._min_rtt = min(self._min_rtt, sample.rtt) if self._min_rtt else sample.rtt
        if self._cwnd < self._ssthresh:
            self._cwnd += sample.newly_acked
            return
        if self._epoch_start < 0:
            self._epoch_start = sample.now
            current = self._cwnd_segments()
            if current < self._w_max:
                self._k = ((self._w_max - current) / C_SCALING) ** (1.0 / 3.0)
            else:
                self._k = 0.0
                self._w_max = current
        t = sample.now - self._epoch_start
        target_segments = self._w_max + C_SCALING * (t - self._k) ** 3
        target = target_segments * self.mss
        if target > self._cwnd:
            # Approach the cubic target within one RTT's worth of ACKs.
            self._cwnd += (target - self._cwnd) * (sample.newly_acked / max(self._cwnd, 1.0))
        else:
            # TCP-friendly region: grow at least like Reno.
            self._cwnd += 0.5 * self.mss * self.mss / self._cwnd * (sample.newly_acked / self.mss)

    def on_loss(self, now: float, in_flight: int) -> None:
        if now - self._last_loss_time < self._min_rtt:
            return  # one reduction per round trip of losses
        self._last_loss_time = now
        segments = self._cwnd_segments()
        # Fast convergence (RFC 8312 §4.6).
        if segments < self._w_max:
            self._w_max = segments * (1.0 + BETA) / 2.0
        else:
            self._w_max = segments
        self._cwnd = max(2.0 * self.mss, self._cwnd * BETA)
        self._ssthresh = self._cwnd
        self._epoch_start = -1.0

    def on_timeout(self, now: float) -> None:
        self._w_max = self._cwnd_segments()
        self._ssthresh = max(2.0 * self.mss, self._cwnd * BETA)
        self._cwnd = float(self.mss)
        self._epoch_start = -1.0

    @property
    def cwnd_bytes(self) -> float:
        return max(self._cwnd, 2.0 * self.mss)
