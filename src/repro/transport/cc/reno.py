"""TCP NewReno: slow start + AIMD with fast recovery.

Kept both as the simplest loss-based baseline and as the foundation CUBIC
falls back to in its TCP-friendly region.
"""

from __future__ import annotations

from typing import Optional

from repro.transport.cc.base import AckSample, CongestionControl, INITIAL_WINDOW_SEGMENTS


class Reno(CongestionControl):
    name = "reno"

    def __init__(self, mss: int = 1460) -> None:
        super().__init__(mss)
        self._cwnd = float(INITIAL_WINDOW_SEGMENTS * mss)
        self._ssthresh = float("inf")
        self._recovery_until = -1.0
        self._last_loss_time: Optional[float] = None

    def on_ack(self, sample: AckSample) -> None:
        if sample.newly_acked <= 0:
            return
        if self._cwnd < self._ssthresh:
            self._cwnd += sample.newly_acked  # slow start: +1 MSS per MSS acked
        else:
            self._cwnd += self.mss * self.mss / self._cwnd * (sample.newly_acked / self.mss)

    def on_loss(self, now: float, in_flight: int) -> None:
        if now < self._recovery_until:
            return  # one reduction per window of loss
        self._ssthresh = max(2.0 * self.mss, self._cwnd / 2.0)
        self._cwnd = self._ssthresh
        self._recovery_until = now + 0.0  # refreshed by caller's RTT below
        self._last_loss_time = now
        # Recovery lasts roughly one RTT; without access to the estimator we
        # use a conservative constant consistent with WAN RTTs.
        self._recovery_until = now + 0.1

    def on_timeout(self, now: float) -> None:
        self._ssthresh = max(2.0 * self.mss, self._cwnd / 2.0)
        self._cwnd = float(self.mss)
        self._recovery_until = now + 0.1

    @property
    def cwnd_bytes(self) -> float:
        return max(self._cwnd, 2.0 * self.mss)

    @property
    def ssthresh_bytes(self) -> float:
        return self._ssthresh
