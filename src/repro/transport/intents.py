"""Socket-Intents-style application→transport interface (§3.3).

The paper argues two easily supplied hints unlock most of the cross-layer
benefit: *flow* category/priority and *message* boundary/priority. This
module gives applications a declarative way to express both, and maps them
onto the packet tags steering policies consume.

Flow categories follow Socket Intents [Schmidt et al., CoNEXT '13]:

* ``interactive`` — user-blocking (web page loads, RPC): priority 0.
* ``realtime``    — latency-critical media: priority 0.
* ``bulk``        — throughput-bound transfers: priority 1.
* ``background``  — log uploads, prefetch: priority 2 (never use scarce
  low-latency capacity; this is Table 1's "DChannel w. priority" hint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import TransportError
from repro.net.node import Device
from repro.sim.kernel import Simulator
from repro.transport import next_flow_id
from repro.transport.connection import Connection, MessageReceipt
from repro.transport.datagram import DatagramSocket

#: Category → flow priority (lower = more important).
FLOW_PRIORITIES = {
    "interactive": 0,
    "realtime": 0,
    "bulk": 1,
    "background": 2,
}

#: Category → datagram blackout degradation (see
#: :class:`repro.transport.datagram.DatagramSocket`). Real-time frames are
#: stale by the time service resumes, so they drop; everything else is
#: late-beats-never and buffers until a channel returns.
BLACKOUT_POLICIES = {
    "interactive": "buffer",
    "realtime": "drop",
    "bulk": "buffer",
    "background": "buffer",
}


@dataclass
class Intent:
    """What the application declares about a flow before opening it."""

    category: str = "interactive"
    #: Override the category's default flow priority.
    flow_priority: Optional[int] = None
    #: Preferred congestion controller for reliable flows.
    cc: str = "cubic"

    def resolved_priority(self) -> int:
        if self.flow_priority is not None:
            return self.flow_priority
        try:
            return FLOW_PRIORITIES[self.category]
        except KeyError:
            known = ", ".join(sorted(FLOW_PRIORITIES))
            raise TransportError(
                f"unknown intent category {self.category!r}; known: {known}"
            ) from None


def open_connection(
    sim: Simulator,
    device: Device,
    intent: Intent,
    flow_id: Optional[int] = None,
    on_message: Optional[Callable[[MessageReceipt], None]] = None,
    **kwargs,
) -> Connection:
    """Open a reliable connection endpoint with the intent's tags applied."""
    return Connection(
        sim,
        device,
        flow_id if flow_id is not None else next_flow_id(),
        cc=intent.cc,
        flow_priority=intent.resolved_priority(),
        on_message=on_message,
        **kwargs,
    )


def open_datagram(
    sim: Simulator,
    device: Device,
    intent: Intent,
    flow_id: Optional[int] = None,
    **kwargs,
) -> DatagramSocket:
    """Open a datagram endpoint with the intent's tags applied.

    Besides the flow priority, the intent category picks the blackout
    degradation mode (realtime drops stale frames, others buffer); pass
    ``blackout=...`` explicitly to override.
    """
    kwargs.setdefault("blackout", BLACKOUT_POLICIES.get(intent.category, "drop"))
    return DatagramSocket(
        sim,
        device,
        flow_id if flow_id is not None else next_flow_id(),
        flow_priority=intent.resolved_priority(),
        **kwargs,
    )
