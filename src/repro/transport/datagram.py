"""Unreliable datagram transport with message reassembly.

Real-time video (§3.3) sends each SVC layer as a *message* of UDP packets;
there is no retransmission — a late frame is a lost frame. The socket
packetizes a message into MTU-sized datagrams tagged with the cross-layer
fields steering policies need (message id, priority, last-packet flag), and
the receiving socket reassembles and reports completed messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._compat import hot_dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import TransportError
from repro.net.node import Device
from repro.net.packet import Packet, PacketType
from repro.sim.kernel import Simulator
from repro.units import DEFAULT_MSS


@hot_dataclass
class DatagramMessage:
    """Receiver-side reassembly state for one message."""

    message_id: int
    priority: Optional[int]
    first_packet_at: float
    bytes_received: int = 0
    total_bytes: Optional[int] = None
    completed_at: Optional[float] = None
    #: Send timestamp of the earliest packet seen (sender clock == sim clock).
    sent_at: Optional[float] = None

    @property
    def complete(self) -> bool:
        return self.total_bytes is not None and self.bytes_received >= self.total_bytes


#: Blackout degradation modes for :class:`DatagramSocket`.
BLACKOUT_MODES = ("drop", "buffer")


@dataclass
class DatagramStats:
    messages_sent: int = 0
    messages_completed: int = 0
    packets_sent: int = 0
    packets_received: int = 0
    bytes_sent: int = 0
    #: Messages discarded at send time because every channel was down
    #: (``blackout="drop"``: a stale frame is worthless once service resumes).
    messages_blackout_dropped: int = 0
    #: Messages held during a blackout and sent on recovery
    #: (``blackout="buffer"``).
    messages_blackout_buffered: int = 0


class DatagramSocket:
    """One endpoint of an unreliable, message-oriented flow.

    ``blackout`` selects the graceful-degradation mode when *every* channel
    is down at send time: ``"drop"`` discards the whole message immediately
    (right for real-time media — by the time service resumes the frame is
    stale), ``"buffer"`` holds messages and flushes them in order on the
    first channel-up transition (right for telemetry/background data where
    late beats never).
    """

    def __init__(
        self,
        sim: Simulator,
        device: Device,
        flow_id: int,
        mtu_payload: int = DEFAULT_MSS,
        flow_priority: Optional[int] = None,
        on_message: Optional[Callable[[DatagramMessage], None]] = None,
        blackout: str = "drop",
    ) -> None:
        if mtu_payload <= 0:
            raise TransportError(f"mtu_payload must be positive, got {mtu_payload}")
        if blackout not in BLACKOUT_MODES:
            raise TransportError(
                f"blackout mode must be one of {BLACKOUT_MODES}, got {blackout!r}"
            )
        self.sim = sim
        self.device = device
        self.flow_id = flow_id
        self.mtu_payload = mtu_payload
        self.flow_priority = flow_priority
        self.on_message = on_message
        self.blackout = blackout
        self.stats = DatagramStats()
        self._assembly: Dict[int, DatagramMessage] = {}
        #: Messages awaiting a channel: (size_bytes, message_id, priority).
        self._blackout_queue: List[tuple] = []
        self._closed = False
        device.register_flow(flow_id, self._on_packet)
        device.on_channel_transition_hooks.append(self._on_channel_transition)

    def send_message(
        self,
        size_bytes: int,
        message_id: int,
        priority: Optional[int] = None,
    ) -> int:
        """Packetize and send one message; returns the packet count.

        Packets are offered to the device back to back; pacing, queueing and
        loss are the network's business. ``seq`` on each packet is the byte
        offset within the message, so the receiver can account for which
        bytes (not just how many) arrived.
        """
        if self._closed:
            raise TransportError(f"flow {self.flow_id}: send on closed socket")
        if size_bytes <= 0:
            raise TransportError(f"message size must be positive, got {size_bytes}")
        if not self.device.any_channel_up():
            if self.blackout == "drop":
                self.stats.messages_blackout_dropped += 1
            else:
                self.stats.messages_blackout_buffered += 1
                self._blackout_queue.append((size_bytes, message_id, priority))
            return 0
        offset = 0
        packets = 0
        while offset < size_bytes:
            payload = min(self.mtu_payload, size_bytes - offset)
            packet = Packet(
                flow_id=self.flow_id,
                ptype=PacketType.DATAGRAM,
                payload_bytes=payload,
            )
            packet.created_at = self.sim.now
            packet.seq = offset
            packet.end_seq = offset + payload
            packet.message_id = message_id
            packet.message_priority = priority
            packet.message_start = 0
            packet.message_last = offset + payload == size_bytes
            packet.flow_priority = self.flow_priority
            self.device.send(packet)
            self.stats.packets_sent += 1
            self.stats.bytes_sent += payload
            offset += payload
            packets += 1
        self.stats.messages_sent += 1
        return packets

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.device.unregister_flow(self.flow_id)
            try:
                self.device.on_channel_transition_hooks.remove(
                    self._on_channel_transition
                )
            except ValueError:
                pass

    # ------------------------------------------------------------------
    def _on_channel_transition(self, channel, up: bool, now: float) -> None:
        if not up or self._closed or not self._blackout_queue:
            return
        pending, self._blackout_queue = self._blackout_queue, []
        for size_bytes, message_id, priority in pending:
            self.send_message(size_bytes, message_id, priority)

    # ------------------------------------------------------------------
    def _on_packet(self, packet: Packet) -> None:
        if packet.ptype != PacketType.DATAGRAM or packet.message_id is None:
            return
        self.stats.packets_received += 1
        state = self._assembly.get(packet.message_id)
        if state is None:
            state = DatagramMessage(
                message_id=packet.message_id,
                priority=packet.message_priority,
                first_packet_at=self.sim.now,
                sent_at=packet.created_at,
            )
            self._assembly[packet.message_id] = state
        if state.sent_at is None or packet.created_at < state.sent_at:
            state.sent_at = packet.created_at
        state.bytes_received += packet.payload_bytes
        if packet.message_last:
            state.total_bytes = packet.end_seq
        if state.complete and state.completed_at is None:
            state.completed_at = self.sim.now
            self.stats.messages_completed += 1
            if self.on_message is not None:
                self.on_message(state)

    def discard_before(self, message_id: int) -> None:
        """Drop reassembly state for messages older than ``message_id``.

        Real-time receivers call this as their playout point advances so
        state for frames that will never complete does not accumulate.
        """
        stale = [mid for mid in self._assembly if mid < message_id]
        for mid in stale:
            del self._assembly[mid]

    def pending_messages(self) -> Dict[int, DatagramMessage]:
        """Reassembly state keyed by message id (completed ones included)."""
        return self._assembly
