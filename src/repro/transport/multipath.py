"""Multipath transport with per-channel subflows (the paper's §4 design).

This is the MPQUIC-shaped endpoint the paper sketches as the natural home
for HVC awareness: one connection, one data-level sequence space, but a
**subflow per channel**, each with its own congestion controller and RTT
estimator. Because every subflow's packets stay on one channel, RTT samples
are never bimodal — the Fig. 1 pathology cannot arise by construction.

Segment placement is a pluggable *scheduler*:

* ``"minrtt"`` — MPTCP's default: the lowest-smoothed-RTT subflow with
  congestion window space (bandwidth aggregation, heterogeneity-blind).
* ``"hvc"`` — the paper's: bulk data fills the high-bandwidth subflow;
  the low-latency subflow is reserved for message tails, small messages
  and loss repair, so it accelerates exactly the bytes an application is
  blocked on. ACKs always return on the low-latency channel.

Reliability is data-level (like MPTCP's DSN space): a segment lost on one
subflow may be *reinjected* on another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import TransportError
from repro.net.node import Device
from repro.net.packet import Packet, PacketType
from repro.obs.probes import probe_for
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.transport.cc import make_cc
from repro.transport.cc.base import AckSample, CongestionControl
from repro.transport.connection import (
    MessageReceipt,
    OutgoingMessage,
    RttRecord,
    Segment,
)
from repro.transport.rtx import RttEstimator
from repro.units import DEFAULT_MSS

SACK_REORDER_BYTES_FACTOR = 3
MAX_SACK_RANGES = 3
#: Messages at most this large count as latency-bound for the hvc scheduler.
SMALL_MESSAGE_BYTES = 3000

SCHEDULERS = ("minrtt", "hvc")


class Subflow:
    """Per-channel sending state: CC, RTT estimator, in-flight accounting."""

    def __init__(self, channel_index: int, cc: CongestionControl, min_rto: float) -> None:
        self.channel_index = channel_index
        self.cc = cc
        self.rtt = RttEstimator(min_rto=min_rto)
        self.in_flight = 0
        self.next_send_time = 0.0

    def has_window(self, size: int) -> bool:
        return self.in_flight + size <= self.cc.cwnd_bytes

    @property
    def srtt(self) -> float:
        return self.rtt.srtt if self.rtt.srtt is not None else 0.05

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Subflow ch={self.channel_index} cwnd={self.cc.cwnd_bytes:.0f} "
            f"inflight={self.in_flight}>"
        )


class MultipathConnection:
    """One endpoint of a multipath connection (one subflow per channel)."""

    def __init__(
        self,
        sim: Simulator,
        device: Device,
        flow_id: int,
        cc: str = "cubic",
        scheduler: str = "hvc",
        mss: int = DEFAULT_MSS,
        min_rto: float = 0.2,
        flow_priority: Optional[int] = None,
        on_message: Optional[Callable[[MessageReceipt], None]] = None,
    ) -> None:
        if scheduler not in SCHEDULERS:
            raise TransportError(
                f"unknown scheduler {scheduler!r}; known: {', '.join(SCHEDULERS)}"
            )
        if not device.channels:
            raise TransportError("device has no channels; attach before opening")
        self.sim = sim
        self.device = device
        self.flow_id = flow_id
        self.mss = mss
        self.scheduler = scheduler
        self.flow_priority = flow_priority
        self.on_message = on_message
        self.subflows: List[Subflow] = [
            Subflow(i, make_cc(cc, mss=mss), min_rto)
            for i in range(len(device.channels))
        ]
        self.stats_rtt_records: List[RttRecord] = []
        self.delivered_timeline: List[Tuple[float, int]] = []
        self.retransmissions = 0
        self.timeouts = 0
        #: Transport probe (:class:`repro.obs.MultipathProbe`): one
        #: cwnd/srtt/inflight/RTO series per subflow when the device is
        #: wired into an observability context with probes enabled.
        self.obs = probe_for(device, flow_id, multipath=True)

        # Data-level send state (mirrors Connection's, minus per-conn CC).
        self._write_end = 0
        self._snd_una = 0
        self._snd_nxt = 0
        self._segments: List[Segment] = []
        self._retx_queue: List[Segment] = []
        self._highest_sacked = 0
        self._messages: List[OutgoingMessage] = []
        self._next_message_index = 0
        self._total_delivered = 0
        self._rto_event: Optional[Event] = None
        #: Lazily-armed timeout instant. Per-transmit/per-ACK re-arms are a
        #: float store; the filed event sleeps the remainder when it fires
        #: early (same idiom as Connection._arm_rto).
        self._rto_deadline: Optional[float] = None
        self._pacing_event: Optional[Event] = None
        #: Everything in ``_segments[:_scan_lo]`` is sacked-or-lost, so
        #: ``_detect_losses`` skips the settled prefix. Reset to 0 by
        #: ``_retransmit`` (the only lost->False transition that leaves a
        #: segment unsettled).
        self._scan_lo = 0
        #: Per-channel high-water mark of sacked end_seq — the loss
        #: threshold base, maintained incrementally by ``_apply_sack`` so
        #: ``_detect_losses`` never rescans the sacked population.
        self._sack_high: Dict[Optional[int], int] = {}
        self._auto_message_ids = iter(range(10**9, 2 * 10**9))

        # Receive state.
        self._rcv_nxt = 0
        self._ooo_ranges: List[Tuple[int, int]] = []
        self._message_ends: Dict[int, Tuple[int, Optional[int], int]] = {}
        self._delivered_message_ends: set = set()
        self._closed = False

        device.register_flow(flow_id, self._on_packet)

    # ------------------------------------------------------------------
    # Channel roles
    # ------------------------------------------------------------------
    def _live_subflows(self) -> List[Subflow]:
        """Subflows whose channel is administratively up (all, if none are)."""
        live = [
            s for s in self.subflows if self.device.views[s.channel_index].up
        ]
        return live if live else list(self.subflows)

    def _ll_subflow(self) -> Subflow:
        """The live subflow on the lowest-base-delay channel."""
        return min(
            self._live_subflows(),
            key=lambda s: self.device.views[s.channel_index].base_delay,
        )

    def _hb_subflow(self) -> Subflow:
        """The live subflow on the highest-rate channel."""
        return max(
            self._live_subflows(),
            key=lambda s: self.device.views[s.channel_index].rate_bps,
        )

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def send_message(
        self,
        size_bytes: int,
        message_id: Optional[int] = None,
        priority: Optional[int] = None,
        on_acked: Optional[Callable[[OutgoingMessage, float], None]] = None,
    ) -> OutgoingMessage:
        """Queue one message; semantics match Connection.send_message."""
        if self._closed:
            raise TransportError(f"flow {self.flow_id}: send on closed connection")
        if size_bytes <= 0:
            raise TransportError(f"message size must be positive, got {size_bytes}")
        if message_id is None:
            message_id = next(self._auto_message_ids)
        message = OutgoingMessage(
            start=self._write_end,
            end=self._write_end + size_bytes,
            message_id=message_id,
            priority=priority,
            on_acked=on_acked,
        )
        self._write_end = message.end
        self._messages.append(message)
        self._try_send()
        return message

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._rto_deadline = None
        for event_attr in ("_rto_event", "_pacing_event"):
            event = getattr(self, event_attr)
            if event is not None:
                self.sim.cancel(event)
                setattr(self, event_attr, None)
        self.device.unregister_flow(self.flow_id)

    @property
    def bytes_acked(self) -> int:
        return self._snd_una

    @property
    def bytes_unsent(self) -> int:
        return self._write_end - self._snd_nxt

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _pick_subflow(self, segment: Segment) -> Optional[Subflow]:
        if self.scheduler == "minrtt":
            candidates = [
                s for s in self._live_subflows() if s.has_window(segment.size)
            ]
            if not candidates:
                return None
            return min(candidates, key=lambda s: s.srtt)
        return self._pick_hvc(segment)

    def _pick_hvc(self, segment: Segment) -> Optional[Subflow]:
        """The paper's scheduler: reserve the LL subflow for urgent bytes."""
        ll = self._ll_subflow()
        hb = self._hb_subflow()
        urgent = segment.retransmitted or segment.message_last or (
            segment.message_size is not None
            and segment.message_size <= SMALL_MESSAGE_BYTES
        )
        if urgent and ll is not hb and ll.has_window(segment.size):
            return ll
        if hb.has_window(segment.size):
            return hb
        # HB full: bulk *waits*. Spilling bulk onto the low-latency subflow
        # would fill its queue and rob urgent segments of the acceleration —
        # the exact misuse of a narrow HVC the paper cautions against.
        return None

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def _message_for_offset(self, offset: int) -> OutgoingMessage:
        for message in self._messages[self._next_message_index:]:
            if message.start <= offset < message.end:
                return message
        raise TransportError(f"flow {self.flow_id}: no message covers offset {offset}")

    def _try_send(self) -> None:
        if self._closed:
            return
        progress = True
        while progress:
            progress = False
            if self._retx_queue:
                segment = self._retx_queue[0]
                if segment.sacked or segment.end_seq <= self._snd_una:
                    self._retx_queue.pop(0)
                    progress = True
                    continue
                subflow = self._pick_subflow(segment)
                if subflow is not None and not self._pacing_gate(subflow):
                    self._retx_queue.pop(0)
                    self._retransmit(segment, subflow)
                    progress = True
                continue
            if self.bytes_unsent <= 0:
                return
            probe = self._peek_next_segment()
            subflow = self._pick_subflow(probe)
            if subflow is None or self._pacing_gate(subflow):
                return
            self._commit_segment(probe)
            self._transmit(probe, subflow, retransmission=False)
            progress = True

    def _peek_next_segment(self) -> Segment:
        message = self._message_for_offset(self._snd_nxt)
        size = min(self.mss, message.end - self._snd_nxt)
        return Segment(
            seq=self._snd_nxt,
            end_seq=self._snd_nxt + size,
            sent_at=self.sim.now,
            delivered_at_send=self._total_delivered,
            message_id=message.message_id,
            message_priority=message.priority,
            message_last=(self._snd_nxt + size == message.end),
            message_start=message.start,
            message_size=message.size,
        )

    def _commit_segment(self, segment: Segment) -> None:
        self._snd_nxt = segment.end_seq
        self._segments.append(segment)

    def _pacing_gate(self, subflow: Subflow) -> bool:
        if subflow.cc.pacing_rate_bps is None or self.sim.now >= subflow.next_send_time:
            return False
        if self._pacing_event is None:
            self._pacing_event = self.sim.schedule(
                subflow.next_send_time - self.sim.now, self._pacing_wakeup
            )
        return True

    def _pacing_wakeup(self) -> None:
        self._pacing_event = None
        self._try_send()

    def _retransmit(self, segment: Segment, subflow: Subflow) -> None:
        segment.lost = False
        # The segment re-enters the scannable population; restart the
        # settled-prefix cursor from the head.
        self._scan_lo = 0
        segment.retransmitted = True
        segment.sent_at = self.sim.now
        segment.no_remark_until = self.sim.now + subflow.srtt
        self.retransmissions += 1
        self._transmit(segment, subflow, retransmission=True)

    def _transmit(self, segment: Segment, subflow: Subflow, retransmission: bool) -> None:
        packet = Packet(
            flow_id=self.flow_id, ptype=PacketType.DATA, payload_bytes=segment.size
        )
        packet.created_at = self.sim.now
        packet.flow_priority = self.flow_priority
        packet.channel_hint = subflow.channel_index
        packet.seq = segment.seq
        packet.end_seq = segment.end_seq
        packet.is_retransmission = retransmission
        packet.message_id = segment.message_id
        packet.message_priority = segment.message_priority
        packet.message_last = segment.message_last
        packet.message_start = segment.message_start
        self.device.send(packet)
        segment.channel = subflow.channel_index
        subflow.in_flight += segment.size
        pacing = subflow.cc.pacing_rate_bps
        if pacing is not None and pacing > 0:
            interval = (segment.size + 40) * 8 / pacing
            subflow.next_send_time = max(subflow.next_send_time, self.sim.now) + interval
        subflow.cc.on_sent(self.sim.now, segment.size, subflow.in_flight)
        self._arm_rto()

    # ------------------------------------------------------------------
    # RTO (data-level: earliest outstanding segment, its subflow's RTO)
    # ------------------------------------------------------------------
    def _arm_rto(self) -> None:
        if self._snd_una < self._snd_nxt:
            rto = max(s.rtt.rto for s in self.subflows)
            deadline = self.sim.now + rto
            self._rto_deadline = deadline
            event = self._rto_event
            if event is None or event.cancelled:
                self._rto_event = self.sim.schedule(rto, self._on_rto)
            elif deadline < event.time:
                # Deadline moved earlier than the filed event (RTO shrink
                # outrunning the clock). Only this rare case pays the
                # cancel+push; the common re-arm is the store above.
                self._rto_event = self.sim.reschedule(event, rto, self._on_rto)
        else:
            self._rto_deadline = None
            if self._rto_event is not None:
                self.sim.cancel(self._rto_event)
                self._rto_event = None

    def _on_rto(self) -> None:
        self._rto_event = None
        if self._closed or self._snd_una >= self._snd_nxt:
            return
        deadline = self._rto_deadline
        if deadline is not None and deadline > self.sim.now:
            # Re-armed lazily since this event was filed — sleep the
            # remainder; the real timeout fires at exactly the deadline
            # the eager idiom would have used.
            self._rto_event = self.sim.schedule_at(deadline, self._on_rto)
            return
        self.timeouts += 1
        first = next((s for s in self._segments if not s.sacked), None)
        if first is None:
            self._arm_rto()
            return
        carrier = self._subflow_for(first.channel)
        carrier.rtt.on_timeout()
        carrier.cc.on_timeout(self.sim.now)
        if self.obs is not None:
            self.obs.on_subflow_timeout(self, carrier)
        if not first.lost:
            carrier.in_flight = max(0, carrier.in_flight - first.size)
            first.lost = True
        if first in self._retx_queue:
            self._retx_queue.remove(first)
        # Reinject on whichever subflow the scheduler prefers now.
        subflow = self._pick_subflow(first) or carrier
        self._retransmit(first, subflow)

    def _subflow_for(self, channel_index: Optional[int]) -> Subflow:
        if channel_index is not None:
            for subflow in self.subflows:
                if subflow.channel_index == channel_index:
                    return subflow
        return self.subflows[0]

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _on_packet(self, packet: Packet) -> None:
        if self._closed:
            return
        if packet.ptype == PacketType.DATA:
            self._on_data(packet)
        elif packet.ptype == PacketType.ACK:
            self._on_ack(packet)

    def _on_data(self, packet: Packet) -> None:
        if packet.message_last and packet.message_id is not None:
            start = packet.message_start if packet.message_start is not None else 0
            self._message_ends[packet.end_seq] = (
                packet.message_id,
                packet.message_priority,
                start,
            )
        self._merge_range(packet.seq, packet.end_seq)
        self._fire_completed_messages()
        ack = Packet(flow_id=self.flow_id, ptype=PacketType.ACK)
        ack.created_at = self.sim.now
        ack.flow_priority = self.flow_priority
        ack.ack_seq = self._rcv_nxt
        ack.sack = tuple(self._ooo_ranges[-MAX_SACK_RANGES:])
        ack.seq = packet.seq
        # §3.2/§4: ACKs return on the LL channel — but only while it has
        # headroom. A 60 Mbps data flow generates ~3 Mbps of ACKs, which
        # would drown a 2 Mbps URLLC channel; past a small queueing bound
        # the ACK falls back to the data packet's own channel.
        ll = self._ll_subflow()
        view = self.device.views[ll.channel_index]
        if view.queueing_delay(ack.size_bytes) <= 2 * view.base_delay:
            ack.channel_hint = ll.channel_index
        elif packet.channel_index is not None:
            ack.channel_hint = packet.channel_index
        self.device.send(ack)

    def _merge_range(self, start: int, end: int) -> None:
        if end <= self._rcv_nxt:
            return
        self._ooo_ranges.append((max(start, self._rcv_nxt), end))
        self._ooo_ranges.sort()
        merged: List[Tuple[int, int]] = []
        for lo, hi in self._ooo_ranges:
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        while merged and merged[0][0] <= self._rcv_nxt:
            self._rcv_nxt = max(self._rcv_nxt, merged.pop(0)[1])
        self._ooo_ranges = merged

    def _fire_completed_messages(self) -> None:
        completed = [
            end
            for end in self._message_ends
            if end <= self._rcv_nxt and end not in self._delivered_message_ends
        ]
        for end in sorted(completed):
            message_id, priority, start = self._message_ends.pop(end)
            self._delivered_message_ends.add(end)
            if self.on_message is not None:
                self.on_message(
                    MessageReceipt(
                        message_id=message_id,
                        priority=priority,
                        size=end - start,
                        completed_at=self.sim.now,
                    )
                )

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def _on_ack(self, packet: Packet) -> None:
        ack_seq = packet.ack_seq
        if ack_seq > self._snd_nxt:
            return
        newly_acked = max(0, ack_seq - self._snd_una)
        newest: Optional[Segment] = None
        if newly_acked:
            self._snd_una = ack_seq
            self._total_delivered += newly_acked
            self.delivered_timeline.append((self.sim.now, self._total_delivered))
            newest = self._ack_segments_below(ack_seq)
        sacked_newest = self._apply_sack(packet.sack)
        newest = sacked_newest or newest

        if newest is not None:
            subflow = self._subflow_for(newest.channel)
            rtt_sample = self.sim.now - newest.sent_at
            subflow.rtt.on_sample(rtt_sample)
            delivered = self._total_delivered - newest.delivered_at_send
            delivery_rate = delivered * 8.0 / rtt_sample if rtt_sample > 0 else None
            self.stats_rtt_records.append(
                RttRecord(
                    time=self.sim.now,
                    rtt=rtt_sample,
                    data_channel=newest.channel,
                    ack_channel=packet.channel_index,
                )
            )
            subflow.cc.on_ack(
                AckSample(
                    now=self.sim.now,
                    rtt=rtt_sample,
                    newly_acked=newly_acked,
                    in_flight=subflow.in_flight,
                    delivery_rate=delivery_rate,
                    app_limited=self.bytes_unsent == 0,
                    data_channel=newest.channel,
                    ack_channel=packet.channel_index,
                    total_delivered=self._total_delivered,
                )
            )
            if self.obs is not None:
                self.obs.on_subflow_ack(self, subflow)
        self._detect_losses()
        self._fire_acked_messages()
        self._arm_rto()
        self._try_send()

    def _ack_segments_below(self, ack_seq: int) -> Optional[Segment]:
        newest: Optional[Segment] = None
        kept: List[Segment] = []
        for segment in self._segments:
            if segment.end_seq <= ack_seq:
                if not segment.sacked and not segment.lost:
                    subflow = self._subflow_for(segment.channel)
                    subflow.in_flight = max(0, subflow.in_flight - segment.size)
                if not segment.retransmitted:
                    newest = segment
            else:
                kept.append(segment)
        # Segments sit in seq order with monotone end_seq, so the removal
        # is a prefix — slide the settled-prefix cursor left by its length.
        removed = len(self._segments) - len(kept)
        if removed:
            lo = self._scan_lo - removed
            self._scan_lo = lo if lo > 0 else 0
        self._segments = kept
        return newest

    def _apply_sack(self, ranges: tuple) -> Optional[Segment]:
        if not ranges:
            return None
        newest: Optional[Segment] = None
        for segment in self._segments:
            if segment.sacked:
                continue
            for lo, hi in ranges:
                if lo <= segment.seq and segment.end_seq <= hi:
                    segment.sacked = True
                    if segment.lost:
                        segment.lost = False
                    else:
                        subflow = self._subflow_for(segment.channel)
                        subflow.in_flight = max(0, subflow.in_flight - segment.size)
                    self._highest_sacked = max(self._highest_sacked, segment.end_seq)
                    high = self._sack_high.get(segment.channel, 0)
                    if segment.end_seq > high:
                        self._sack_high[segment.channel] = segment.end_seq
                    if not segment.retransmitted:
                        newest = segment
                    break
        return newest

    def _detect_losses(self) -> None:
        """Per-subflow SACK loss detection: a hole is lost only relative to
        later deliveries *on its own channel* (cross-channel reordering is
        normal here, not a loss signal).

        ``_sack_high`` carries the per-channel high-water marks
        incrementally (stale entries from cumulatively-acked segments are
        harmless: every live segment's end_seq exceeds them, so they can
        never cross a threshold) and ``_scan_lo`` skips the settled
        sacked-or-lost prefix, so each call walks only the unsettled tail.
        """
        per_channel_high = self._sack_high
        if not per_channel_high:
            return
        segments = self._segments
        n = len(segments)
        lo = self._scan_lo
        while lo < n:
            head = segments[lo]
            if head.sacked or head.lost:
                lo += 1
            else:
                break
        self._scan_lo = lo
        reorder_slack = SACK_REORDER_BYTES_FACTOR * self.mss
        newly_lost: List[Segment] = []
        for i in range(lo, n):
            segment = segments[i]
            if segment.sacked or segment.lost:
                continue
            threshold = per_channel_high.get(segment.channel, 0) - reorder_slack
            if segment.end_seq <= threshold and self.sim.now >= segment.no_remark_until:
                segment.lost = True
                subflow = self._subflow_for(segment.channel)
                subflow.in_flight = max(0, subflow.in_flight - segment.size)
                newly_lost.append(segment)
        if newly_lost:
            self._retx_queue.extend(newly_lost)
            channels = {segment.channel for segment in newly_lost}
            for channel in channels:
                subflow = self._subflow_for(channel)
                subflow.cc.on_loss(self.sim.now, subflow.in_flight)

    def _fire_acked_messages(self) -> None:
        while self._next_message_index < len(self._messages):
            message = self._messages[self._next_message_index]
            if message.end > self._snd_una:
                break
            message.acked_at = self.sim.now
            if message.on_acked is not None:
                message.on_acked(message, self.sim.now)
            self._next_message_index += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MultipathConnection flow={self.flow_id} una={self._snd_una} "
            f"nxt={self._snd_nxt} scheduler={self.scheduler}>"
        )
