"""QUIC-style stream multiplexing with priorities (§4's design input).

The paper notes that an MPQUIC-based design "can also accept application
input (e.g., stream priority) which could help packet scheduling". This
layer provides that surface: many prioritized *streams* share one
underlying connection (reliable single-path or multipath). Each stream
carries ordered messages; the mux drains stream send-queues strictly by
priority (lower value first) with round-robin inside a priority class, and
tags everything it sends with the stream's priority so steering policies
and multipath schedulers can act on it.

Because the underlying connection is a single ordered byte stream, a large
low-priority message already *in flight* still blocks later bytes (the
HTTP/2-over-TCP head-of-line property); the mux limits that damage by
fragmenting stream data into ``chunk_bytes`` messages so high-priority
data never waits behind more than one chunk.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

from repro._compat import hot_dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import TransportError
from repro.transport.connection import MessageReceipt

#: Stream data is fragmented into chunks so priority preemption is bounded.
DEFAULT_CHUNK_BYTES = 16_384
#: message_id layout: stream_id * STREAM_STRIDE + per-stream counter.
STREAM_STRIDE = 1_000_000


@hot_dataclass
class StreamMessage:
    """Receiver-side notification: one application message on one stream."""

    stream_id: int
    message_index: int
    size: int
    priority: int
    completed_at: float


@hot_dataclass
class _Pending:
    """Sender-side queued message on a stream."""

    message_index: int
    size: int
    remaining: int
    on_acked: Optional[Callable[[int, float], None]] = None


class Stream:
    """Sender-side handle for one stream."""

    def __init__(self, mux: "StreamMux", stream_id: int, priority: int) -> None:
        self.mux = mux
        self.stream_id = stream_id
        self.priority = priority
        self._queue: Deque[_Pending] = deque()
        self._next_index = 0
        self.bytes_queued = 0

    def send_message(
        self,
        size_bytes: int,
        on_acked: Optional[Callable[[int, float], None]] = None,
    ) -> int:
        """Queue one message on this stream; returns its message index."""
        if size_bytes <= 0:
            raise TransportError(f"message size must be positive, got {size_bytes}")
        index = self._next_index
        self._next_index += 1
        self._queue.append(
            _Pending(message_index=index, size=size_bytes, remaining=size_bytes,
                     on_acked=on_acked)
        )
        self.bytes_queued += size_bytes
        self.mux._pump()
        return index

    @property
    def has_data(self) -> bool:
        return bool(self._queue)


class StreamMux:
    """Multiplexes prioritized streams over one connection endpoint.

    ``connection`` is any object with ``send_message(size, message_id=...,
    priority=..., on_acked=...)`` and an assignable ``on_message`` callback
    — both :class:`~repro.transport.connection.Connection` and
    :class:`~repro.transport.multipath.MultipathConnection` qualify.
    """

    def __init__(
        self,
        connection,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        on_stream_message: Optional[Callable[[StreamMessage], None]] = None,
    ) -> None:
        if chunk_bytes <= 0:
            raise TransportError(f"chunk_bytes must be positive, got {chunk_bytes}")
        self.connection = connection
        self.chunk_bytes = chunk_bytes
        self.on_stream_message = on_stream_message
        self._streams: Dict[int, Stream] = {}
        self._next_stream_id = 0
        self._rr_cursor: Dict[int, int] = {}  # priority → round-robin index
        # Receive side: (stream, message) → bytes seen, total.
        self._rx: Dict[Tuple[int, int], List[int]] = {}
        self._rx_meta: Dict[Tuple[int, int], Tuple[int, int]] = {}
        connection.on_message = self._on_chunk

    # ------------------------------------------------------------------
    # Stream management
    # ------------------------------------------------------------------
    def open_stream(self, priority: int = 0) -> Stream:
        """Create a stream; lower ``priority`` values are served first."""
        stream = Stream(self, self._next_stream_id, priority)
        self._streams[stream.stream_id] = stream
        self._next_stream_id += 1
        return stream

    # ------------------------------------------------------------------
    # Sender: strict-priority, round-robin-within-class chunk scheduler
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Feed the connection, keeping at most ~one chunk buffered unsent.

        Backpressure is what makes priorities effective: if the mux dumped
        every queued byte into the connection's (strictly ordered) send
        buffer immediately, a later high-priority message could never get
        ahead. Each chunk's ack re-triggers the pump.
        """
        while self.connection.bytes_unsent < self.chunk_bytes:
            stream = self._pick_stream()
            if stream is None:
                return
            self._send_chunk(stream)

    def _pick_stream(self) -> Optional[Stream]:
        ready = [s for s in self._streams.values() if s.has_data]
        if not ready:
            return None
        top = min(s.priority for s in ready)
        candidates = sorted(
            (s for s in ready if s.priority == top), key=lambda s: s.stream_id
        )
        cursor = self._rr_cursor.get(top, 0)
        chosen = candidates[cursor % len(candidates)]
        self._rr_cursor[top] = (cursor % len(candidates)) + 1
        return chosen

    def _send_chunk(self, stream: Stream) -> None:
        pending = stream._queue[0]
        take = min(self.chunk_bytes, pending.remaining)
        offset = pending.size - pending.remaining
        pending.remaining -= take
        stream.bytes_queued -= take
        is_last = pending.remaining == 0
        if is_last:
            stream._queue.popleft()
        # Chunk header (framing metadata) rides in the message id channel:
        # chunk ids are globally unique; stream/message/offset/total travel
        # in a tiny side table mirrored on both endpoints via the chunk's
        # first bytes — modelled here by registering the mapping.
        chunk_id = self._encode_chunk(stream.stream_id, pending.message_index,
                                      offset, pending.size, is_last)
        self.connection.send_message(
            take,
            message_id=chunk_id,
            priority=stream.priority,
            on_acked=lambda m, t, p=pending, last=is_last: self._chunk_acked(p, last, t),
        )

    def _chunk_acked(self, pending: _Pending, was_last: bool, now: float) -> None:
        if was_last and pending.on_acked is not None:
            pending.on_acked(pending.message_index, now)
        self._pump()

    # ------------------------------------------------------------------
    # Chunk framing: metadata packed into the message id
    # ------------------------------------------------------------------
    def _encode_chunk(
        self, stream_id: int, message_index: int, offset: int, total: int, last: bool
    ) -> int:
        # In a real wire format this header leads the chunk payload; here
        # the receiving mux reads it from the shared registry. The id must
        # be process-unique (a shared counter), not per-mux — two endpoints
        # sending concurrently would otherwise collide in the registry.
        chunk_id = next(_chunk_ids)
        _CHUNK_REGISTRY[chunk_id] = (stream_id, message_index, offset, total, last)
        return _CHUNK_ID_BASE + chunk_id

    # ------------------------------------------------------------------
    # Receiver
    # ------------------------------------------------------------------
    def _on_chunk(self, receipt: MessageReceipt) -> None:
        header = _CHUNK_REGISTRY.get(receipt.message_id - _CHUNK_ID_BASE)
        if header is None:
            return
        stream_id, message_index, offset, total, last = header
        key = (stream_id, message_index)
        seen = self._rx.setdefault(key, [0])
        seen[0] += receipt.size
        self._rx_meta[key] = (total, receipt.priority if receipt.priority is not None else 0)
        if seen[0] >= total:
            del self._rx[key]
            total_bytes, priority = self._rx_meta.pop(key)
            if self.on_stream_message is not None:
                self.on_stream_message(
                    StreamMessage(
                        stream_id=stream_id,
                        message_index=message_index,
                        size=total_bytes,
                        priority=priority,
                        completed_at=receipt.completed_at,
                    )
                )


#: Chunk ids must never collide with application message ids.
_CHUNK_ID_BASE = 4_000_000_000
#: Process-global chunk id source (shared by every mux endpoint).
_chunk_ids = itertools.count(1)
#: Process-global chunk header registry (stands in for an on-wire header;
#: contents are written by the sending mux and read once by the receiver).
_CHUNK_REGISTRY: Dict[int, Tuple[int, int, int, int, bool]] = {}
