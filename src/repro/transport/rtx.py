"""RTT estimation and retransmission timeout per RFC 6298 (Jacobson/Karn).

Karn's rule is enforced by the caller: retransmitted segments never produce
RTT samples.
"""

from __future__ import annotations

from typing import Optional

#: Conservative floor; real stacks use 200 ms – 1 s. Low-latency channels
#: make smaller floors attractive, so it is configurable per connection.
DEFAULT_MIN_RTO = 0.2
DEFAULT_MAX_RTO = 60.0
#: RTO before the first RTT sample (RFC 6298 says 1 s).
INITIAL_RTO = 1.0

ALPHA = 1.0 / 8.0
BETA = 1.0 / 4.0
K = 4.0
#: Exponential backoff ceiling (RFC 6298 allows capping the multiplier).
MAX_BACKOFF = 64.0


class RttEstimator:
    """Smoothed RTT / RTT variance / RTO state machine."""

    def __init__(self, min_rto: float = DEFAULT_MIN_RTO, max_rto: float = DEFAULT_MAX_RTO) -> None:
        if min_rto <= 0 or max_rto < min_rto:
            raise ValueError(f"invalid RTO bounds [{min_rto}, {max_rto}]")
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.latest_rtt: Optional[float] = None
        self.min_rtt: Optional[float] = None
        self.samples = 0
        self.consecutive_timeouts = 0
        self._backoff = 1.0

    def on_sample(self, rtt: float) -> None:
        """Fold in one RTT measurement (never from a retransmission)."""
        if rtt <= 0:
            raise ValueError(f"rtt sample must be positive, got {rtt}")
        self.latest_rtt = rtt
        self.samples += 1
        self._backoff = 1.0
        self.consecutive_timeouts = 0
        if self.min_rtt is None or rtt < self.min_rtt:
            self.min_rtt = rtt
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            assert self.rttvar is not None
            self.rttvar = (1 - BETA) * self.rttvar + BETA * abs(self.srtt - rtt)
            self.srtt = (1 - ALPHA) * self.srtt + ALPHA * rtt

    def on_timeout(self) -> None:
        """Exponential backoff after a retransmission timeout fires."""
        self.consecutive_timeouts += 1
        self._backoff = min(self._backoff * 2.0, MAX_BACKOFF)

    def reset_backoff(self) -> None:
        """Forget accumulated backoff without an RTT sample.

        Fault-aware RTO interaction: timeouts fired into a channel outage
        measure the outage, not the path — once the sender *knows* a channel
        came back (a local administrative signal, not a guess), waiting out
        a minute-scale backed-off timer would dominate time-to-recover.
        """
        self._backoff = 1.0
        self.consecutive_timeouts = 0

    @property
    def backoff(self) -> float:
        """Current backoff multiplier (1 when no timeout is outstanding)."""
        return self._backoff

    @property
    def rto(self) -> float:
        """Current retransmission timeout (seconds)."""
        if self.srtt is None:
            base = INITIAL_RTO
        else:
            assert self.rttvar is not None
            base = self.srtt + K * self.rttvar
        return min(self.max_rto, max(self.min_rto, base) * self._backoff)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        srtt = f"{self.srtt * 1e3:.1f}ms" if self.srtt is not None else "?"
        return f"<RttEstimator srtt={srtt} rto={self.rto * 1e3:.0f}ms>"
