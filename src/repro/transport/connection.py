"""A reliable, full-duplex, message-aware transport connection.

The design is TCP-shaped (byte sequence space, cumulative + selective ACKs,
Jacobson RTO, SACK-based loss recovery per RFC 6675) with two QUIC-shaped
additions the paper needs:

* **Message boundaries & priorities.** Applications write *messages*;
  segments never straddle a boundary and every packet carries its message's
  id/priority/remaining-bytes tags, so cross-layer steering policies can act
  on them (§3.3). Policies that ignore the tags see plain packets (§3.1).
* **Channel echo.** Pure ACKs echo which channel the acked data travelled
  on, giving HVC-aware congestion control per-channel RTT attribution
  (§3.2) — information a real multi-channel transport would have.

The connection is simulation-native: it owns no socket, it just exchanges
:class:`~repro.net.packet.Packet` objects through its host's
:class:`~repro.net.node.Device` (where steering happens).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro._compat import hot_dataclass
from repro.errors import TransportError
from repro.net.node import Device
from repro.net.packet import Packet, PacketType
from repro.obs.probes import probe_for
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.transport.cc import make_cc
from repro.transport.cc.base import AckSample, CongestionControl
from repro.transport.rtx import RttEstimator
from repro.units import DEFAULT_MSS

DUP_ACK_THRESHOLD = 3
#: RFC 6675-style reordering allowance: a hole is "lost" once data this many
#: bytes above it has been selectively acknowledged.
SACK_REORDER_BYTES_FACTOR = 3
#: Number of SACK ranges an ACK carries (TCP fits ~3 in options).
MAX_SACK_RANGES = 3


@hot_dataclass
class Segment:
    """Sender-side record of one transmitted segment."""

    seq: int
    end_seq: int
    sent_at: float
    delivered_at_send: int
    retransmitted: bool = False
    sacked: bool = False
    #: Declared lost (awaiting retransmission); excluded from the pipe.
    lost: bool = False
    #: Don't re-declare lost before this time (post-retransmit grace).
    no_remark_until: float = 0.0
    channel: Optional[int] = None
    message_id: Optional[int] = None
    message_priority: Optional[int] = None
    message_last: bool = False
    message_start: Optional[int] = None
    #: Total size of the message this segment belongs to (schedulers use it
    #: to recognize latency-bound small messages from their first segment).
    message_size: Optional[int] = None

    @property
    def size(self) -> int:
        return self.end_seq - self.seq


@hot_dataclass
class OutgoingMessage:
    """One application message queued on the send side."""

    start: int
    end: int
    message_id: int
    priority: Optional[int]
    on_acked: Optional[Callable[["OutgoingMessage", float], None]] = None
    acked_at: Optional[float] = None

    @property
    def size(self) -> int:
        return self.end - self.start


@hot_dataclass
class MessageReceipt:
    """Receiver-side notification for one completed message."""

    message_id: int
    priority: Optional[int]
    size: int
    completed_at: float


@hot_dataclass
class RttRecord:
    """One RTT measurement, kept for analysis (Fig. 1b)."""

    time: float
    rtt: float
    data_channel: Optional[int]
    ack_channel: Optional[int]


@dataclass
class ConnectionStats:
    """Lifetime accounting for one connection endpoint."""

    bytes_sent: int = 0
    bytes_acked: int = 0
    bytes_received: int = 0
    segments_sent: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    #: RTOs that fired while *every* channel was down. Retransmitting into a
    #: blackout is pointless and would poison the congestion controller, so
    #: these back off the timer without touching cwnd.
    blackout_timeouts: int = 0
    #: Fast retransmissions issued right after a channel came back up.
    recovery_probes: int = 0
    fast_retransmits: int = 0
    rtt_records: List[RttRecord] = field(default_factory=list)
    #: (time, cumulative bytes delivered) checkpoints for throughput series.
    delivered_timeline: List[Tuple[float, int]] = field(default_factory=list)


class Connection:
    """One endpoint of a reliable connection.

    Create one at each host with the same ``flow_id``; they find each other
    through the channel set. The side that calls :meth:`send_message` first
    drives data; both directions may send concurrently.
    """

    def __init__(
        self,
        sim: Simulator,
        device: Device,
        flow_id: int,
        cc: str = "cubic",
        mss: int = DEFAULT_MSS,
        min_rto: float = 0.2,
        flow_priority: Optional[int] = None,
        handshake: bool = False,
        on_message: Optional[Callable[[MessageReceipt], None]] = None,
        ack_bytes: int = 0,
        tenant_id: Optional[int] = None,
        sack: bool = True,
        pacing: bool = True,
        blackout_suppression: bool = True,
    ) -> None:
        self.sim = sim
        self.device = device
        self.flow_id = flow_id
        self.mss = mss
        self.cc: CongestionControl = make_cc(cc, mss=mss) if isinstance(cc, str) else cc
        self.rtt = RttEstimator(min_rto=min_rto)
        self.flow_priority = flow_priority
        #: Fleet-mode tenant this connection belongs to (``None`` outside
        #: multi-tenant runs); lets experiments attribute foreground flows
        #: to tenants and requirement classes.
        self.tenant_id = tenant_id
        self.on_message = on_message
        #: Payload bytes a pure ACK carries (0 = genuinely pure). Setting
        #: this >0 models "data tacked onto the ACK" (§3.2 discussion).
        self.ack_bytes = ack_bytes
        #: Component switches for the ablation harness. Off means: ACKs
        #: carry no SACK ranges / the pacer never gates a send / RTOs
        #: during total blackout take the normal timeout path.
        self.sack_enabled = sack
        self.pacing_enabled = pacing
        self.blackout_suppression = blackout_suppression
        self.stats = ConnectionStats()
        #: Transport probe (:class:`repro.obs.ConnectionProbe`), attached
        #: automatically when the device is wired into an observability
        #: context with probes enabled; ``None`` otherwise.
        self.obs = probe_for(device, flow_id)

        # --- send state ---
        self._write_end = 0
        self._snd_una = 0
        self._snd_nxt = 0
        self._segments: List[Segment] = []  # outstanding, ordered by seq
        #: Loss-scan cursor: every segment below this index is sacked or
        #: already marked lost, so ``_detect_losses`` never re-reads the
        #: settled prefix. Shrinks with prefix deletions; resets to 0 when
        #: a retransmission clears a ``lost`` flag (the only way a
        #: settled segment becomes scannable again).
        self._scan_lo = 0
        #: Loss-sweep high-water mark: every unsacked segment with
        #: ``end_seq <= _loss_swept`` has already been examined against
        #: the SACK-reordering threshold (the threshold is monotone, so
        #: each ACK only needs to sweep the newly uncovered span). The
        #: deferred leftovers — segments below the mark whose
        #: ``no_remark_until`` was still in the future — wait in
        #: ``_remark_pending`` instead of forcing a re-walk of the whole
        #: sacked scoreboard.
        self._loss_swept = float("-inf")
        self._remark_pending: List[Segment] = []
        #: Wake gates for ``_remark_pending``: the earliest holdoff expiry
        #: and the lowest blocking ``end_seq`` among deferred segments. A
        #: pending segment can only become markable when the clock passes
        #: its holdoff or the threshold reaches its ``end_seq``, so the
        #: scan is skipped entirely until one of the gates trips — a mass
        #: retransmission (RTO) parks the whole window here without
        #: every later ACK re-walking it.
        self._pending_time_wake = float("inf")
        self._pending_seq_wake = float("inf")
        self._retx_queue: List[Segment] = []  # declared lost, to resend first
        self._flight_bytes = 0
        self._highest_sacked = 0
        self._messages: List[OutgoingMessage] = []
        self._next_message_index = 0  # first message not fully acked
        self._dup_acks = 0
        self._recovery_end: Optional[int] = None
        self._rto_event: Optional[Event] = None
        #: Lazy RTO: the deadline that actually matters. Every transmit
        #: and ACK "re-arms" the timer by storing a new deadline here
        #: (one float assignment); the single scheduled event checks the
        #: deadline when it fires and sleeps the remainder. This removes
        #: the cancel+push pair per packet the eager idiom paid.
        self._rto_deadline: Optional[float] = None
        self._pacing_event: Optional[Event] = None
        self._next_send_time = 0.0
        self._total_delivered = 0
        self._auto_message_ids = iter(range(10**9, 2 * 10**9))

        # --- receive state ---
        self._rcv_nxt = 0
        self._ooo_ranges: List[Tuple[int, int]] = []
        self._message_ends: Dict[int, Tuple[int, Optional[int], int]] = {}
        self._delivered_message_ends: set = set()

        # --- connection state ---
        self._established = not handshake
        self._handshake_pending = handshake
        self._closed = False
        #: True while RTOs are being suppressed because no channel is up;
        #: cleared by the first channel-up transition, which re-probes fast.
        self._blackout_suppressed = False

        device.register_flow(flow_id, self._on_packet)
        device.on_channel_transition_hooks.append(self._on_channel_transition)

    # ==================================================================
    # Application interface
    # ==================================================================
    def send_message(
        self,
        size_bytes: int,
        message_id: Optional[int] = None,
        priority: Optional[int] = None,
        on_acked: Optional[Callable[[OutgoingMessage, float], None]] = None,
    ) -> OutgoingMessage:
        """Queue one application message of ``size_bytes`` for delivery.

        ``on_acked(message, time)`` fires when every byte of the message has
        been cumulatively acknowledged. The receiving endpoint's
        ``on_message`` fires when the peer has the complete message.
        """
        if self._closed:
            raise TransportError(f"flow {self.flow_id}: send on closed connection")
        if size_bytes <= 0:
            raise TransportError(f"message size must be positive, got {size_bytes}")
        if message_id is None:
            message_id = next(self._auto_message_ids)
        message = OutgoingMessage(
            start=self._write_end,
            end=self._write_end + size_bytes,
            message_id=message_id,
            priority=priority,
            on_acked=on_acked,
        )
        self._write_end = message.end
        self._messages.append(message)
        if self._handshake_pending:
            self._start_handshake()
        else:
            self._try_send()
        return message

    def close(self) -> None:
        """Stop timers and detach from the device."""
        if self._closed:
            return
        self._closed = True
        self._rto_deadline = None
        if self._rto_event is not None:
            self.sim.cancel(self._rto_event)
            self._rto_event = None
        if self._pacing_event is not None:
            self.sim.cancel(self._pacing_event)
            self._pacing_event = None
        self.device.unregister_flow(self.flow_id)
        try:
            self.device.on_channel_transition_hooks.remove(self._on_channel_transition)
        except ValueError:
            pass

    @property
    def bytes_in_flight(self) -> int:
        """Estimated bytes in the network (SACKed and lost bytes excluded)."""
        return self._flight_bytes

    @property
    def bytes_outstanding(self) -> int:
        """Bytes sent but not cumulatively acknowledged."""
        return self._snd_nxt - self._snd_una

    @property
    def bytes_unsent(self) -> int:
        return self._write_end - self._snd_nxt

    @property
    def established(self) -> bool:
        return self._established

    def audit_state(self) -> dict:
        """Internal state snapshot for the invariant monitor.

        Everything :mod:`repro.check` needs to assert the transport's
        conservation laws without reaching into private fields: sequence
        bounds, the flight-byte ledger and its recomputation from the
        segment list, receive-side contiguity, and the CC/RTO envelope.
        """
        return {
            "snd_una": self._snd_una,
            "snd_nxt": self._snd_nxt,
            "write_end": self._write_end,
            "flight_bytes": self._flight_bytes,
            "segment_flight": sum(
                s.size for s in self._segments if not s.sacked and not s.lost
            ),
            "segments": [(s.seq, s.end_seq) for s in self._segments],
            "retx_queued": len(self._retx_queue),
            "rcv_nxt": self._rcv_nxt,
            "ooo_ranges": list(self._ooo_ranges),
            "cwnd_bytes": self.cc.cwnd_bytes,
            "pacing_rate_bps": (
                self.cc.pacing_rate_bps if self.pacing_enabled else None
            ),
            "rto": self.rtt.rto,
            "min_rto": self.rtt.min_rto,
            "max_rto": self.rtt.max_rto,
            "bytes_acked": self.stats.bytes_acked,
            "bytes_sent": self.stats.bytes_sent,
            "closed": self._closed,
        }

    # ==================================================================
    # Handshake
    # ==================================================================
    def _start_handshake(self) -> None:
        self._handshake_pending = False
        self.device.send(self._make_packet(PacketType.SYN))
        # If the SYN is lost the connection would hang; retry on a timer.
        self._rto_event = self.sim.schedule(self.rtt.rto, self._handshake_timeout)

    def _handshake_timeout(self) -> None:
        self._rto_event = None
        if not self._established and not self._closed:
            self.device.send(self._make_packet(PacketType.SYN))
            self.rtt.on_timeout()
            self._rto_event = self.sim.schedule(self.rtt.rto, self._handshake_timeout)

    def _on_syn(self, packet: Packet) -> None:
        if not self._established:
            self._established = True
            if self._rto_event is not None:
                self.sim.cancel(self._rto_event)
                self._rto_event = None
            # Respond so the initiator establishes too (SYN/SYN-ACK).
            if packet.ack_seq == 0:
                reply = self._make_packet(PacketType.SYN)
                reply.ack_seq = 1
                self.device.send(reply)
            self._try_send()
        elif packet.ack_seq == 0:
            # Duplicate SYN from a peer retry: re-acknowledge it.
            reply = self._make_packet(PacketType.SYN)
            reply.ack_seq = 1
            self.device.send(reply)

    # ==================================================================
    # Send path
    # ==================================================================
    def _make_packet(self, ptype: PacketType, payload: int = 0) -> Packet:
        packet = Packet(flow_id=self.flow_id, ptype=ptype, payload_bytes=payload)
        packet.created_at = self.sim.now
        packet.flow_priority = self.flow_priority
        return packet

    def _message_for_offset(self, offset: int) -> OutgoingMessage:
        for message in self._messages[self._next_message_index:]:
            if message.start <= offset < message.end:
                return message
        raise TransportError(f"flow {self.flow_id}: no message covers offset {offset}")

    def _window_allows(self, size: int) -> bool:
        return self._flight_bytes + size <= self.cc.cwnd_bytes

    def _pacing_gate(self) -> bool:
        """True if sending must wait for the pacer; schedules the wake-up."""
        if not self.pacing_enabled:
            return False
        if self.cc.pacing_rate_bps is None or self.sim.now >= self._next_send_time:
            return False
        if self._pacing_event is None:
            self._pacing_event = self.sim.schedule(
                self._next_send_time - self.sim.now, self._pacing_wakeup
            )
        return True

    def _pacing_wakeup(self) -> None:
        self._pacing_event = None
        self._try_send()

    def _advance_pacer(self, size_bytes: int) -> None:
        if not self.pacing_enabled:
            return
        pacing_rate = self.cc.pacing_rate_bps
        if pacing_rate is not None and pacing_rate > 0:
            interval = (size_bytes + 40) * 8 / pacing_rate
            self._next_send_time = max(self._next_send_time, self.sim.now) + interval

    def _try_send(self) -> None:
        if not self._established or self._closed:
            return
        while True:
            # Lost segments are resent before new data.
            if self._retx_queue:
                segment = self._retx_queue[0]
                if not self._window_allows(segment.size) or self._pacing_gate():
                    return
                self._retx_queue.pop(0)
                if segment.sacked or segment.end_seq <= self._snd_una:
                    continue  # acknowledged while queued
                self._retransmit_segment(segment)
                continue
            if self.bytes_unsent <= 0:
                return
            if not self._window_allows(self.mss) or self._pacing_gate():
                return
            self._send_new_segment()

    def _send_new_segment(self) -> None:
        message = self._message_for_offset(self._snd_nxt)
        size = min(self.mss, message.end - self._snd_nxt)
        segment = Segment(
            seq=self._snd_nxt,
            end_seq=self._snd_nxt + size,
            sent_at=self.sim.now,
            delivered_at_send=self._total_delivered,
            message_id=message.message_id,
            message_priority=message.priority,
            message_last=(self._snd_nxt + size == message.end),
            message_start=message.start,
            message_size=message.size,
        )
        self._snd_nxt += size
        self._segments.append(segment)
        self._flight_bytes += size
        self._transmit(segment, retransmission=False)

    def _retransmit_segment(self, segment: Segment) -> None:
        segment.lost = False
        self._scan_lo = 0  # the segment re-enters the loss scan
        # Its end_seq is behind the sweep high-water mark, so the delta
        # sweep will never revisit it — queue it for re-examination once
        # the remark holdoff below expires.
        segment.retransmitted = True
        segment.sent_at = self.sim.now
        segment.no_remark_until = self.sim.now + (self.rtt.srtt or 0.1)
        self._remark_pending.append(segment)
        if segment.no_remark_until < self._pending_time_wake:
            self._pending_time_wake = segment.no_remark_until
        self._flight_bytes += segment.size
        self.stats.retransmissions += 1
        self._transmit(segment, retransmission=True)

    def _transmit(self, segment: Segment, retransmission: bool) -> None:
        packet = self._make_packet(PacketType.DATA, payload=segment.size)
        packet.seq = segment.seq
        packet.end_seq = segment.end_seq
        packet.is_retransmission = retransmission
        packet.segment = segment
        packet.message_id = segment.message_id
        packet.message_priority = segment.message_priority
        packet.message_last = segment.message_last
        packet.message_start = segment.message_start
        self.device.send(packet)
        segment.channel = packet.channel_index
        self.stats.segments_sent += 1
        self.stats.bytes_sent += segment.size
        self._advance_pacer(segment.size)
        self.cc.on_sent(self.sim.now, segment.size, self._flight_bytes)
        self._arm_rto()

    # ------------------------------------------------------------------
    # Retransmission timer
    # ------------------------------------------------------------------
    def _arm_rto(self) -> None:
        if self._snd_una < self._snd_nxt:
            deadline = self.sim.now + self.rtt.rto
            self._rto_deadline = deadline
            event = self._rto_event
            if event is None or event.cancelled:
                self._rto_event = self.sim.schedule(self.rtt.rto, self._on_rto)
            elif deadline < event.time:
                # The deadline moved *earlier* than the filed event (an
                # RTO shrink outrunning the clock — e.g. backoff reset
                # after a blackout). Only this rare case pays the
                # cancel+push; the common per-packet re-arm is the
                # deadline store above.
                self._rto_event = self.sim.reschedule(event, self.rtt.rto, self._on_rto)
        else:
            self._rto_deadline = None
            if self._rto_event is not None:
                self.sim.cancel(self._rto_event)
                self._rto_event = None

    def _on_rto(self) -> None:
        self._rto_event = None
        if self._closed or self._snd_una >= self._snd_nxt:
            return
        deadline = self._rto_deadline
        if deadline is not None and deadline > self.sim.now:
            # Re-armed lazily since this event was filed: the timeout
            # fires at exactly the deadline the eager idiom would have
            # used — sleep the remainder.
            self._rto_event = self.sim.schedule_at(deadline, self._on_rto)
            return
        if self.blackout_suppression and not self.device.any_channel_up():
            # Total blackout: the timeout measured the outage, not
            # congestion. Don't collapse cwnd, don't waste a retransmission
            # the device would drop anyway — just back the timer off and
            # wait for the channel-up signal to re-probe.
            self.stats.blackout_timeouts += 1
            self.rtt.on_timeout()
            self._blackout_suppressed = True
            if self.obs is not None:
                # Probe the suppressed fire too: a run of timeout samples
                # with growing RTO but flat cwnd is the blackout signature.
                self.obs.on_timeout(self)
            self._rto_deadline = self.sim.now + self.rtt.rto
            self._rto_event = self.sim.schedule(self.rtt.rto, self._on_rto)
            return
        self.stats.timeouts += 1
        self.rtt.on_timeout()
        self.cc.on_timeout(self.sim.now)
        if self.obs is not None:
            self.obs.on_timeout(self)
        # RFC 5681 semantics: after an RTO the whole outstanding window is
        # presumed lost and the pipe empty. Without this, segments that died
        # in a channel outage (never SACKed, so never marked lost) keep
        # inflating flight_bytes above the collapsed cwnd and recovery
        # degenerates to one segment per backed-off RTO.
        unsacked = [s for s in self._segments if not s.sacked]
        for segment in unsacked:
            if not segment.lost:
                self._flight_bytes -= segment.size
                segment.lost = True
        # Rebuild the retransmission queue in sequence order: the hole at
        # snd_una is what advances the cumulative ACK (and clears the
        # backoff), so it must go out first, whatever order losses were
        # declared in before the timeout.
        self._retx_queue = list(unsacked)
        if self._retx_queue:
            first = self._retx_queue.pop(0)
            self._retransmit_segment(first)
            self._try_send()
        else:
            self._arm_rto()

    def _on_channel_transition(self, channel, up: bool, now: float) -> None:
        """Fault-aware recovery: a channel coming back up ends the wait.

        If RTOs were suppressed during a total blackout, the backed-off
        timer may be minutes out — but the recovery signal is local and
        certain, so forget the backoff and immediately re-probe with the
        first unacknowledged segment (no congestion penalty: nothing about
        the path's capacity was learned from the outage).
        """
        if not up or self._closed or not self._blackout_suppressed:
            return
        self._blackout_suppressed = False
        self.rtt.reset_backoff()
        if self._snd_una >= self._snd_nxt:
            self._arm_rto()
            return
        first = next((s for s in self._segments if not s.sacked), None)
        if first is not None:
            self.stats.recovery_probes += 1
            if not first.lost:
                self._flight_bytes -= first.size
                first.lost = True
            if first in self._retx_queue:
                self._retx_queue.remove(first)
            self._retransmit_segment(first)
        self._try_send()

    # ==================================================================
    # Receive path
    # ==================================================================
    def _on_packet(self, packet: Packet) -> None:
        if self._closed:
            return
        if packet.ptype == PacketType.SYN:
            self._on_syn(packet)
        elif packet.ptype == PacketType.DATA:
            self._on_data(packet)
        elif packet.ptype == PacketType.ACK:
            self._on_ack(packet)

    # ------------------------------------------------------------------
    # Data reception → cumulative + selective ACK
    # ------------------------------------------------------------------
    def _on_data(self, packet: Packet) -> None:
        if not self._established:
            self._established = True  # data implies the peer established
        if packet.message_last and packet.message_id is not None:
            start = packet.message_start if packet.message_start is not None else 0
            self._message_ends[packet.end_seq] = (
                packet.message_id,
                packet.message_priority,
                start,
            )
        self._merge_range(packet.seq, packet.end_seq)
        self.stats.bytes_received += packet.payload_bytes
        self._fire_completed_messages()
        self._send_ack(packet)

    def _merge_range(self, start: int, end: int) -> None:
        if end <= self._rcv_nxt:
            return  # pure duplicate
        self._ooo_ranges.append((max(start, self._rcv_nxt), end))
        self._ooo_ranges.sort()
        merged: List[Tuple[int, int]] = []
        for lo, hi in self._ooo_ranges:
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        while merged and merged[0][0] <= self._rcv_nxt:
            self._rcv_nxt = max(self._rcv_nxt, merged.pop(0)[1])
        self._ooo_ranges = merged

    def _fire_completed_messages(self) -> None:
        completed = [
            end
            for end in self._message_ends
            if end <= self._rcv_nxt and end not in self._delivered_message_ends
        ]
        for end in sorted(completed):
            message_id, priority, start = self._message_ends.pop(end)
            self._delivered_message_ends.add(end)
            if self.on_message is not None:
                self.on_message(
                    MessageReceipt(
                        message_id=message_id,
                        priority=priority,
                        size=end - start,
                        completed_at=self.sim.now,
                    )
                )

    def _send_ack(self, data_packet: Packet) -> None:
        ack = self._make_packet(PacketType.ACK, payload=self.ack_bytes)
        ack.ack_seq = self._rcv_nxt
        ack.sack = (
            tuple(self._ooo_ranges[-MAX_SACK_RANGES:]) if self.sack_enabled else ()
        )
        # Echo which channel the data took, for HVC-aware CC attribution.
        ack.seq = data_packet.seq
        ack.segment = data_packet.segment
        ack.message_id = data_packet.message_id
        ack.message_priority = data_packet.message_priority
        self.device.send(ack)

    # ------------------------------------------------------------------
    # ACK processing → CC + RTT + SACK loss recovery
    # ------------------------------------------------------------------
    def _on_ack(self, packet: Packet) -> None:
        ack_seq = packet.ack_seq
        if ack_seq > self._snd_nxt:
            return  # corrupt/stale beyond what we sent
        newly_acked = max(0, ack_seq - self._snd_una)
        newest: Optional[Segment] = None

        if newly_acked:
            self._snd_una = ack_seq
            self._dup_acks = 0
            # Forward progress proves the path carries data again; a backoff
            # accumulated during an outage must not throttle recovery (the
            # acked data may all be retransmissions, so Karn's rule would
            # never produce the sample that normally clears it).
            self.rtt.reset_backoff()
            self._total_delivered += newly_acked
            self.stats.bytes_acked = self._snd_una
            self.stats.delivered_timeline.append((self.sim.now, self._total_delivered))
            newest = self._ack_segments_below(ack_seq)
            if self._recovery_end is not None and ack_seq >= self._recovery_end:
                self._recovery_end = None
        elif ack_seq == self._snd_una:
            # A genuine duplicate. Acks that race across channels arrive
            # *stale* (ack_seq < snd_una) and must not count — treating them
            # as dup-acks causes spurious loss recovery.
            self._dup_acks += 1

        newest = self._apply_sack(packet.sack) or newest

        rtt_sample: Optional[float] = None
        delivery_rate: Optional[float] = None
        if newest is not None:
            rtt_sample = self.sim.now - newest.sent_at
            self.rtt.on_sample(rtt_sample)
            delivered = self._total_delivered - newest.delivered_at_send
            if rtt_sample > 0:
                delivery_rate = delivered * 8.0 / rtt_sample
            self.stats.rtt_records.append(
                RttRecord(
                    time=self.sim.now,
                    rtt=rtt_sample,
                    data_channel=newest.channel,
                    ack_channel=packet.channel_index,
                )
            )

        self._detect_losses()

        sample = AckSample(
            now=self.sim.now,
            rtt=rtt_sample,
            newly_acked=newly_acked,
            in_flight=self._flight_bytes,
            delivery_rate=delivery_rate,
            app_limited=self.bytes_unsent == 0,
            data_channel=newest.channel if newest is not None else None,
            ack_channel=packet.channel_index,
            total_delivered=self._total_delivered,
        )
        self.cc.on_ack(sample)
        if self.obs is not None:
            self.obs.on_ack(self)
        self._fire_acked_messages()
        self._arm_rto()  # re-arms on outstanding data, disarms otherwise
        self._try_send()

    # ``_segments`` is kept sorted by ``seq`` (equivalently ``end_seq``):
    # new segments carve contiguous ranges off the send stream and are
    # appended in order, and nothing ever reorders the list. The three
    # per-ACK scans below lean on that — each is O(affected segments)
    # instead of O(outstanding window), which is where fig1a-scale runs
    # spend most of their transport time.

    def _ack_segments_below(self, ack_seq: int) -> Optional[Segment]:
        """Drop cumulatively acked segments; return the newest RTT-eligible.

        Cumulatively acked segments form a prefix of the sorted list, so
        this walks only that prefix and deletes it in one slice.
        """
        newest: Optional[Segment] = None
        segments = self._segments
        idx = 0
        for segment in segments:
            if segment.end_seq > ack_seq:
                break
            idx += 1
            if not segment.sacked and not segment.lost:
                self._flight_bytes -= segment.size
            if not segment.retransmitted:
                newest = segment
        if idx:
            del segments[:idx]
            lo = self._scan_lo - idx
            self._scan_lo = lo if lo > 0 else 0
        return newest

    def _bisect_seq(self, seq: int) -> int:
        """Index of the first segment with ``segment.seq >= seq``."""
        segments = self._segments
        lo, hi = 0, len(segments)
        while lo < hi:
            mid = (lo + hi) // 2
            if segments[mid].seq < seq:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _apply_sack(self, ranges: tuple) -> Optional[Segment]:
        """Mark SACKed segments; return the newest one for RTT sampling.

        Each SACK range covers a contiguous run of segments: binary-search
        to its first segment, walk until ``end_seq`` leaves the range.
        """
        if not ranges:
            return None
        segments = self._segments
        newest_idx = -1
        for lo, hi in ranges:
            i = self._bisect_seq(lo)
            n = len(segments)
            while i < n:
                segment = segments[i]
                if segment.end_seq > hi:
                    break
                if not segment.sacked:
                    segment.sacked = True
                    if segment.lost:
                        segment.lost = False
                    else:
                        self._flight_bytes -= segment.size
                    if segment.end_seq > self._highest_sacked:
                        self._highest_sacked = segment.end_seq
                    if not segment.retransmitted and i > newest_idx:
                        newest_idx = i
                i += 1
        return segments[newest_idx] if newest_idx >= 0 else None

    def _detect_losses(self) -> None:
        """SACK-based loss inference (RFC 6675-lite) + dup-ACK fallback.

        The reordering threshold is monotone (``_highest_sacked`` never
        goes backwards), so each call sweeps only the span of segments
        the threshold newly uncovered since the previous call — not the
        whole sub-threshold scoreboard, which is mostly SACKed holes'
        neighbours that a full walk re-read on every ACK. Segments
        examined while their remark holdoff was still running wait in
        ``_remark_pending``; retransmissions re-enter through the same
        list (see :meth:`_retransmit_segment`).
        """
        threshold = self._highest_sacked - SACK_REORDER_BYTES_FACTOR * self.mss
        newly_lost: List[Segment] = []
        now = self.sim.now
        segments = self._segments
        n = len(segments)
        # Advance the cursor past the settled (sacked-or-lost) prefix —
        # the dup-ACK fallback below needs the first unsettled segment.
        lo = self._scan_lo
        while lo < n:
            segment = segments[lo]
            if segment.sacked or segment.lost:
                lo += 1
            else:
                break
        self._scan_lo = lo
        # Deferred candidates whose holdoff may have expired. Entries are
        # dropped once settled (sacked, re-lost, or cumulatively acked —
        # an acked segment left ``_segments`` entirely and must not be
        # remarked through the retained reference).
        pending = self._remark_pending
        if pending and (
            now >= self._pending_time_wake or threshold >= self._pending_seq_wake
        ):
            keep: List[Segment] = []
            time_wake = float("inf")
            seq_wake = float("inf")
            snd_una = self._snd_una
            for segment in pending:
                if segment.sacked or segment.lost or segment.end_seq <= snd_una:
                    continue
                if segment.end_seq > threshold:
                    keep.append(segment)
                    if segment.end_seq < seq_wake:
                        seq_wake = segment.end_seq
                    continue
                if now < segment.no_remark_until:
                    keep.append(segment)
                    if segment.no_remark_until < time_wake:
                        time_wake = segment.no_remark_until
                    continue
                segment.lost = True
                self._flight_bytes -= segment.size
                newly_lost.append(segment)
            self._remark_pending = keep
            self._pending_time_wake = time_wake
            self._pending_seq_wake = seq_wake
        # Fresh candidates: the span the threshold uncovered since the
        # last sweep, ``end_seq`` in (swept, threshold]. New segments are
        # created above the threshold (their seq exceeds the highest
        # SACK), so every segment is examined by exactly one delta sweep.
        swept = self._loss_swept
        if threshold > swept:
            i, hi = 0, n
            while i < hi:
                mid = (i + hi) // 2
                if segments[mid].end_seq <= swept:
                    i = mid + 1
                else:
                    hi = mid
            while i < n:
                segment = segments[i]
                i += 1
                if segment.end_seq > threshold:
                    break
                if segment.sacked or segment.lost:
                    continue
                if now >= segment.no_remark_until:
                    segment.lost = True
                    self._flight_bytes -= segment.size
                    newly_lost.append(segment)
                else:
                    self._remark_pending.append(segment)
                    if segment.no_remark_until < self._pending_time_wake:
                        self._pending_time_wake = segment.no_remark_until
            self._loss_swept = threshold
        if len(newly_lost) > 1:
            # Both sources feed the retransmission queue; keep the
            # sequence order the single-walk implementation produced.
            newly_lost.sort(key=lambda s: s.seq)
        if not newly_lost and self._dup_acks >= DUP_ACK_THRESHOLD:
            # segments[lo] is by construction the first segment that is
            # neither sacked nor lost (and the first loop marked nothing
            # on this branch), so the old linear probe collapses to it.
            first = segments[lo] if lo < n else None
            if first is not None and self.sim.now >= first.no_remark_until:
                first.lost = True
                self._flight_bytes -= first.size
                newly_lost.append(first)
                self._dup_acks = 0
        if newly_lost:
            self._retx_queue.extend(newly_lost)
            self.cc.on_lost(
                self.sim.now,
                sum(s.size for s in newly_lost),
                self._flight_bytes,
            )
            if self._recovery_end is None:
                # One congestion response per window of loss.
                self._recovery_end = self._snd_nxt
                self.stats.fast_retransmits += 1
                self.cc.on_loss(self.sim.now, self._flight_bytes)

    def _fire_acked_messages(self) -> None:
        while self._next_message_index < len(self._messages):
            message = self._messages[self._next_message_index]
            if message.end > self._snd_una:
                break
            message.acked_at = self.sim.now
            if message.on_acked is not None:
                message.on_acked(message, self.sim.now)
            self._next_message_index += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Connection flow={self.flow_id} una={self._snd_una} nxt={self._snd_nxt}"
            f" inflight={self._flight_bytes} cc={self.cc.name}>"
        )
