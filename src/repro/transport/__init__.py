"""Transport substrate: reliable connections, datagrams, congestion control.

Two transports are provided:

* :class:`~repro.transport.connection.Connection` — a reliable, full-duplex,
  message-aware byte stream (TCP-like segmentation/ACKs/RTO, QUIC-like
  message boundaries and priorities) with pluggable congestion control.
* :class:`~repro.transport.datagram.DatagramSocket` — unreliable datagrams
  for real-time media, with per-message cross-layer tags.

Congestion controllers live in :mod:`repro.transport.cc` and are selected by
name through :func:`repro.transport.cc.make_cc`.
"""

import itertools

from repro.transport.connection import Connection
from repro.transport.datagram import DatagramSocket
from repro.transport.multipath import MultipathConnection
from repro.transport.rtx import RttEstimator
from repro.transport.streams import StreamMux

_flow_ids = itertools.count(1)


def next_flow_id() -> int:
    """Allocate a process-unique flow identifier."""
    return next(_flow_ids)


__all__ = [
    "Connection",
    "DatagramSocket",
    "MultipathConnection",
    "RttEstimator",
    "StreamMux",
    "next_flow_id",
]
