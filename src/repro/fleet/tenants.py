"""Tenant population generation for fleet-scale runs.

A *tenant* is one background connection: it arrives at some time, has a
finite transfer to move, belongs to a requirement class (what it needs
from the network) and runs a congestion-control flavour (how it behaves
under load). The same population drives both engines — handed to the
fluid stepper it becomes rate ODEs; handed to the packet-level world it
becomes real connections — which is what makes the hybrid-vs-packet
validation an apples-to-apples comparison.

Generation is pure ``random.Random`` (not numpy) so populations are
identical whether or not the optional numpy fast path is available, and
identical across shard processes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ScenarioError

#: Default class mix, roughly "a phone's mixed workload": interactive
#: traffic, bulk sync, schedulable uploads, and scavenger-class noise.
DEFAULT_CLASS_MIX: Dict[str, float] = {
    "latency": 0.3,
    "throughput": 0.3,
    "background": 0.3,
    "deadline": 0.1,
}

#: Default CCA mix across tenants (per-CCA goodput shares are a headline
#: fleet-experiment output, so the mix is part of the population).
DEFAULT_CCA_MIX: Dict[str, float] = {
    "cubic": 0.5,
    "bbr": 0.25,
    "vegas": 0.25,
}


@dataclass(frozen=True)
class PopulationSpec:
    """Everything needed to (re)generate one tenant population."""

    tenants: int
    duration: float
    seed: int = 0
    #: Mean transfer size in bytes (lognormal; heavy-tailed like real
    #: application objects — many small messages, a few big syncs).
    mean_size: float = 6000.0
    sigma: float = 1.1
    max_size: int = 250_000
    min_size: int = 200
    #: Arrivals spread uniformly over ``duration * arrival_span`` so the
    #: tail of the run drains rather than admits.
    arrival_span: float = 0.8
    class_mix: Tuple[Tuple[str, float], ...] = tuple(DEFAULT_CLASS_MIX.items())
    cca_mix: Tuple[Tuple[str, float], ...] = tuple(DEFAULT_CCA_MIX.items())

    def validate(self) -> None:
        if self.tenants <= 0:
            raise ScenarioError(f"tenants must be positive, got {self.tenants}")
        if self.duration <= 0:
            raise ScenarioError(f"duration must be positive, got {self.duration}")
        if not 0 < self.arrival_span <= 1:
            raise ScenarioError(
                f"arrival_span must be in (0, 1], got {self.arrival_span}"
            )
        for name, mix in (("class_mix", self.class_mix), ("cca_mix", self.cca_mix)):
            if not mix or any(w < 0 for _, w in mix) or sum(w for _, w in mix) <= 0:
                raise ScenarioError(f"{name} must hold non-negative weights summing > 0")


def _weighted_pick(rng: random.Random, cumulative: List[Tuple[float, str]]) -> str:
    x = rng.random() * cumulative[-1][0]
    for bound, name in cumulative:
        if x < bound:
            return name
    return cumulative[-1][1]


def _cumulative(mix) -> List[Tuple[float, str]]:
    acc = 0.0
    out = []
    for name, weight in mix:
        acc += weight
        out.append((acc, name))
    return out


@dataclass
class TenantPopulation:
    """Concrete tenants, sorted by arrival time."""

    spec: PopulationSpec
    arrivals: List[float] = field(default_factory=list)
    sizes: List[int] = field(default_factory=list)
    classes: List[str] = field(default_factory=list)
    ccas: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.arrivals)

    @classmethod
    def generate(cls, spec: PopulationSpec) -> "TenantPopulation":
        spec.validate()
        rng = random.Random(spec.seed)
        # Lognormal with the requested mean: mu = ln(mean) - sigma^2/2.
        mu = math.log(spec.mean_size) - spec.sigma * spec.sigma / 2.0
        class_cum = _cumulative(spec.class_mix)
        cca_cum = _cumulative(spec.cca_mix)
        window = spec.duration * spec.arrival_span
        rows = []
        for _ in range(spec.tenants):
            arrival = rng.random() * window
            size = int(rng.lognormvariate(mu, spec.sigma))
            size = max(spec.min_size, min(spec.max_size, size))
            rclass = _weighted_pick(rng, class_cum)
            cca = _weighted_pick(rng, cca_cum)
            rows.append((arrival, size, rclass, cca))
        rows.sort(key=lambda r: r[0])
        pop = cls(spec=spec)
        for arrival, size, rclass, cca in rows:
            pop.arrivals.append(arrival)
            pop.sizes.append(size)
            pop.classes.append(rclass)
            pop.ccas.append(cca)
        return pop

    def class_names(self) -> List[str]:
        return sorted({name for name, _ in self.spec.class_mix})

    def cca_names(self) -> List[str]:
        return sorted({name for name, _ in self.spec.cca_mix})
