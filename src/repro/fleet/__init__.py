"""Fleet-scale multi-tenant simulation with a hybrid-fidelity engine.

One simulated network carries 10k+ connections sharing a heterogeneous
channel pair (ROADMAP item 1). Two fidelities coexist in one kernel:

* **Foreground** flows — the ones under study — run packet-level on the
  existing event kernel: real transport, real steering, real queues.
* **Background** tenants run as a fluid approximation
  (:class:`~repro.fleet.fluid.FluidBackground`): one rate ODE per
  tenant, stepped on a coarse timer, whose aggregate rate is installed
  on each :class:`~repro.net.link.Link` as background load. Foreground
  packets, steering views, and the :class:`~repro.net.monitor.
  ChannelMonitor` all see that load, so both worlds stay coherent.

The fidelity boundary and what the fluid model does/doesn't capture are
documented in ``docs/ARCHITECTURE.md``; the hybrid-vs-packet-level
equivalence gate lives in :mod:`repro.fleet.validation`.
"""

from repro.fleet.tenants import PopulationSpec, TenantPopulation
from repro.fleet.fluid import FLUID_CCAS, FluidBackground
from repro.fleet.hybrid import (
    FLEET_PRESETS,
    FleetConfig,
    FleetSimulation,
    fleet_channel_specs,
)
from repro.fleet.validation import (
    ValidationTolerance,
    check_equivalence,
    run_equivalence_case,
)

__all__ = [
    "PopulationSpec",
    "TenantPopulation",
    "FLUID_CCAS",
    "FluidBackground",
    "FLEET_PRESETS",
    "FleetConfig",
    "FleetSimulation",
    "fleet_channel_specs",
    "ValidationTolerance",
    "check_equivalence",
    "run_equivalence_case",
]
