"""Hybrid-fidelity fleet simulation: packet-level foreground over a
fluid background, in one kernel.

:class:`FleetSimulation` wires together an :class:`~repro.core.api.
HvcNetwork`, a :class:`~repro.fleet.fluid.FluidBackground` stepping the
tenant population, a :class:`~repro.net.monitor.ChannelMonitor`, and a
set of closed-loop foreground connections (real transport + steering on
the packet kernel). Foreground flows carry requirement classes through
the :class:`~repro.steering.requirements.RequirementPinnedSteerer` and
tenant ids through the transport, so per-tenant attribution works end to
end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.api import HvcNetwork
from repro.errors import ScenarioError
from repro.fleet.fluid import FluidBackground
from repro.fleet.tenants import PopulationSpec, TenantPopulation
from repro.net.hvc import (
    cisp_spec,
    fiber_wan_spec,
    fixed_embb_spec,
    urllc_spec,
    wifi_mlo_specs,
)
from repro.net.monitor import ChannelMonitor
from repro.steering.requirements import (
    RequirementPinnedSteerer,
    requirement_class,
)

#: Channel presets a fleet can run over. "paper" is the HotNets pair
#: (eMBB + URLLC); "wan" the cISP-style fiber+microwave pair; "mlo" the
#: Wi-Fi 7 multi-link pair; "small" a scaled-down eMBB+URLLC pair for
#: fast validation cases.
FLEET_PRESETS = ("paper", "wan", "mlo", "small")


def fleet_channel_specs(preset: str):
    if preset == "paper":
        return [fixed_embb_spec(), urllc_spec()]
    if preset == "wan":
        return [fiber_wan_spec(), cisp_spec()]
    if preset == "mlo":
        return list(wifi_mlo_specs())
    if preset == "small":
        # 12 Mbps eMBB-like + URLLC: small enough that <=100 packet-level
        # flows exercise real contention in a short sim.
        return [fixed_embb_spec(rate_bps=12_000_000.0), urllc_spec()]
    known = ", ".join(FLEET_PRESETS)
    raise ScenarioError(f"unknown fleet preset {preset!r}; known: {known}")


@dataclass
class FleetConfig:
    """One fleet run, fully specified (every field is a primitive)."""

    tenants: int = 10_000
    foreground: int = 12
    duration: float = 20.0
    seed: int = 0
    preset: str = "paper"
    tick: float = 0.01
    monitor_period: float = 0.25
    #: Foreground closed loop: repeated messages of this size per flow.
    fg_message_bytes: int = 60_000
    #: Think time between a response completing and the next request.
    fg_think: float = 0.05
    fg_stagger: float = 0.1
    #: Requirement classes / CCAs cycled across foreground flows.
    fg_classes: Tuple[str, ...] = ("latency", "throughput", "background", "deadline")
    fg_ccas: Tuple[str, ...] = ("cubic", "bbr", "vegas")
    #: Mean background transfer size (bytes).
    mean_size: float = 6000.0
    #: Shard split of the foreground set (background replays identically
    #: in every shard; see experiments/fleet.py).
    shard: int = 0
    shards: int = 1
    #: Whether the fluid ODEs react to measured packet-level traffic.
    #: Sharded runs must turn this off: with it on, each shard's
    #: background would see a different foreground subset and diverge.
    sense_foreground: bool = True

    def population_spec(self) -> PopulationSpec:
        return PopulationSpec(
            tenants=self.tenants,
            duration=self.duration,
            seed=self.seed,
            mean_size=self.mean_size,
        )

    def validate(self) -> None:
        if self.foreground < 0:
            raise ScenarioError(f"foreground must be >= 0, got {self.foreground}")
        if not 0 <= self.shard < self.shards:
            raise ScenarioError(
                f"shard must be in [0, {self.shards}), got {self.shard}"
            )
        if self.shards > 1 and self.sense_foreground:
            raise ScenarioError(
                "sharded fleet runs require sense_foreground=False — with the "
                "foreground->background feedback on, each shard's background "
                "would see a different foreground subset and diverge"
            )
        for name in self.fg_classes:
            requirement_class(name)


class _ForegroundFlow:
    """One closed-loop request stream: send, await ack, think, repeat."""

    def __init__(self, sim, pair, index: int, config: FleetConfig, until: float):
        self.sim = sim
        self.pair = pair
        self.index = index
        self.size = config.fg_message_bytes
        self.think = config.fg_think
        self.until = until
        self.fcts: List[float] = []
        self.bytes_acked = 0
        self._sent_at: Optional[float] = None

    def start(self, delay: float) -> None:
        self.sim.schedule(delay, self._send)

    def _send(self) -> None:
        if self.sim.now >= self.until:
            return
        self._sent_at = self.sim.now
        self.pair.client.send_message(self.size, on_acked=self._on_acked)

    def _on_acked(self, message, when: float) -> None:
        self.fcts.append(when - self._sent_at)
        self.bytes_acked += message.size
        if when + self.think < self.until:
            self.sim.schedule(self.think, self._send)


class FleetSimulation:
    """Build and run one hybrid fleet world."""

    def __init__(self, config: FleetConfig, obs=None, use_numpy: Optional[bool] = None):
        config.validate()
        self.config = config
        specs = fleet_channel_specs(config.preset)
        self.steerer = RequirementPinnedSteerer()
        self.net = HvcNetwork(specs, steering=self.steerer, seed=config.seed)
        if obs is not None:
            self.net.attach_obs(obs)
            self.monitor = self.net.obs_monitor
        else:
            self.monitor = ChannelMonitor(
                self.net.sim, self.net.channels, period=config.monitor_period
            )
        self.population = TenantPopulation.generate(config.population_spec())
        self.fluid = FluidBackground(
            self.net.sim,
            self.net.channels,
            self.population,
            tick=config.tick,
            horizon=config.duration,
            use_numpy=use_numpy,
            obs=obs,
            sense_foreground=config.sense_foreground,
        )
        self.flows: List[_ForegroundFlow] = []
        self._fg_meta: List[Dict] = []
        for i in range(config.foreground):
            rclass = config.fg_classes[i % len(config.fg_classes)]
            cca = config.fg_ccas[i % len(config.fg_ccas)]
            meta = {"index": i, "rclass": rclass, "cca": cca}
            self._fg_meta.append(meta)
            if i % config.shards != config.shard:
                continue
            rc = requirement_class(rclass)
            pair = self.net.open_connection(
                cc=cca,
                flow_priority=rc.flow_priority,
                tenant_id=i,
            )
            self.steerer.assign(pair.client.flow_id, rclass)
            flow = _ForegroundFlow(
                self.net.sim, pair, i, config, until=config.duration
            )
            flow.start(config.fg_stagger * (i + 1))
            self.flows.append(flow)

    def run(self) -> Dict:
        self.fluid.start()
        self.net.run(until=self.config.duration)
        self.fluid.stop()
        self.monitor.stop()
        return self.results()

    # ------------------------------------------------------------------
    def results(self) -> Dict:
        config = self.config
        bg = self.fluid.results()
        fg_flows = []
        fg_bytes_by_cca: Dict[str, float] = {}
        for flow in self.flows:
            meta = self._fg_meta[flow.index]
            fg_flows.append(
                {
                    "index": flow.index,
                    "rclass": meta["rclass"],
                    "cca": meta["cca"],
                    "fct": [round(x, 6) for x in flow.fcts],
                    "bytes_acked": flow.bytes_acked,
                }
            )
            fg_bytes_by_cca[meta["cca"]] = (
                fg_bytes_by_cca.get(meta["cca"], 0.0) + flow.bytes_acked
            )
        utilization = {
            name: {
                "up": round(series.utilization("up"), 4),
                "down": round(series.utilization("down"), 4),
            }
            for name, series in self.monitor.series.items()
        }
        goodput = goodput_shares(bg["bytes_by_cca"], fg_bytes_by_cca)
        return {
            "config": {
                "tenants": config.tenants,
                "foreground": config.foreground,
                "duration": config.duration,
                "seed": config.seed,
                "preset": config.preset,
                "shard": config.shard,
                "shards": config.shards,
            },
            "background": bg,
            "background_digest": self.fluid.digest(),
            "foreground": fg_flows,
            "events_processed": self.net.sim.events_processed,
            "utilization": utilization,
            "goodput_shares": goodput,
        }


def goodput_shares(
    bg_bytes_by_cca: Dict[str, float], fg_bytes_by_cca: Dict[str, float]
) -> Dict[str, float]:
    """Per-CCA share of all application bytes moved (background + fg)."""
    totals: Dict[str, float] = {}
    for source in (bg_bytes_by_cca, fg_bytes_by_cca):
        for cca, value in source.items():
            totals[cca] = totals.get(cca, 0.0) + value
    grand = sum(totals.values())
    if grand <= 0:
        return {cca: 0.0 for cca in totals}
    return {cca: round(value / grand, 4) for cca, value in sorted(totals.items())}


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 on empty input."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac
