"""The hybrid-fidelity equivalence gate.

The fluid background is only trustworthy if, on cases small enough to
afford full packet-level simulation, it reproduces what the packet
engine says. This module runs the *same* tenant population both ways:

* **full** — every tenant is a real :class:`~repro.transport.connection.
  Connection` steered by the :class:`~repro.steering.requirements.
  RequirementPinnedSteerer` (so flows land on the channels their
  requirement class picks — the same rule the fluid engine applies);
* **hybrid** — every tenant runs in the
  :class:`~repro.fleet.fluid.FluidBackground`.

and compares flow-completion-time distribution and per-channel
utilization against :class:`ValidationTolerance`. The tolerances are
documented honestly: a fluid model shares capacity smoothly, so it
cannot reproduce per-packet loss epochs, slow-start overshoot or
retransmission tails — it tracks the *distributional* shape (medians,
upper quantiles within tens of percent, utilization within ~0.12
absolute), not per-flow times. See docs/ARCHITECTURE.md for the full
fidelity boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.api import HvcNetwork
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.fleet.fluid import FluidBackground
from repro.fleet.hybrid import fleet_channel_specs, percentile
from repro.fleet.tenants import PopulationSpec, TenantPopulation
from repro.net.monitor import ChannelMonitor
from repro.steering.requirements import RequirementPinnedSteerer, requirement_class


@dataclass(frozen=True)
class ValidationTolerance:
    """Documented agreement bounds for the equivalence gate."""

    #: Relative error allowed on the pooled FCT median.
    fct_p50_rel: float = 0.35
    #: Relative error allowed on the pooled FCT 90th percentile.
    fct_p90_rel: float = 0.50
    #: Absolute grace on FCT percentile deltas: with tens of samples the
    #: FCT distribution is strongly bimodal (1-RTT vs 2-RTT slow-start
    #: clusters), so a percentile that lands on the cluster boundary can
    #: jump by a whole RTT when one flow changes side. A delta is only a
    #: violation if it exceeds the relative tolerance *and* this many
    #: seconds (one WAN-ish RTT).
    fct_abs_grace: float = 0.05
    #: Absolute error allowed on per-channel (uplink) utilization.
    util_abs: float = 0.12
    #: Both engines must finish at least this fraction of tenants.
    min_completion: float = 0.9


def _arm_faults(net: HvcNetwork, fault_rows) -> int:
    """Arm an identical fault schedule against either engine's network."""
    if not fault_rows:
        return 0
    schedule = FaultSchedule.from_params(fault_rows)
    FaultInjector(net, schedule).arm()
    return len(schedule)


def _run_full(
    population: TenantPopulation,
    preset: str,
    duration: float,
    seed: int,
    monitor_period: float,
    fault_rows=None,
) -> Dict:
    """Every tenant as a real packet-level connection."""
    specs = fleet_channel_specs(preset)
    steerer = RequirementPinnedSteerer()
    net = HvcNetwork(specs, steering=steerer, seed=seed)
    _arm_faults(net, fault_rows)
    monitor = ChannelMonitor(net.sim, net.channels, period=monitor_period)
    fcts: List[Optional[float]] = [None] * len(population)

    def open_and_send(i: int) -> None:
        rclass = requirement_class(population.classes[i])
        pair = net.open_connection(
            cc=population.ccas[i],
            flow_priority=rclass.flow_priority,
            tenant_id=i,
        )
        steerer.assign(pair.client.flow_id, population.classes[i])
        start = net.sim.now

        def on_acked(message, when, _i=i, _start=start):
            fcts[_i] = when - _start

        pair.client.send_message(population.sizes[i], on_acked=on_acked)

    for i, arrival in enumerate(population.arrivals):
        net.sim.schedule_at(arrival, open_and_send, i)
    net.run(until=duration)
    monitor.stop()
    done = [f for f in fcts if f is not None]
    return {
        "engine": "full",
        "fct": done,
        "completed": len(done),
        "tenants": len(population),
        "utilization": {
            name: series.utilization("up") for name, series in monitor.series.items()
        },
        "events": net.sim.events_processed,
        "outages": sum(ch.outage_count for ch in net.channels),
        "downtime_s": sum(ch.downtime_total for ch in net.channels),
    }


def _run_hybrid(
    population: TenantPopulation,
    preset: str,
    duration: float,
    seed: int,
    monitor_period: float,
    tick: float,
    use_numpy: Optional[bool] = None,
    fault_rows=None,
) -> Dict:
    """Every tenant as a fluid flow (pure background, no foreground)."""
    specs = fleet_channel_specs(preset)
    net = HvcNetwork(specs, seed=seed)
    _arm_faults(net, fault_rows)
    monitor = ChannelMonitor(net.sim, net.channels, period=monitor_period)
    fluid = FluidBackground(
        net.sim,
        net.channels,
        population,
        tick=tick,
        horizon=duration,
        use_numpy=use_numpy,
    )
    fluid.start()
    net.run(until=duration)
    fluid.stop()
    monitor.stop()
    return {
        "engine": "hybrid",
        "fct": fluid.fct_samples(),
        "completed": fluid.completed_count(),
        "tenants": len(population),
        "utilization": {
            name: series.utilization("up") for name, series in monitor.series.items()
        },
        "events": net.sim.events_processed,
        "backend": fluid.backend,
        "outages": sum(ch.outage_count for ch in net.channels),
        "downtime_s": sum(ch.downtime_total for ch in net.channels),
        "stalls": fluid.results()["stalls"],
    }


def run_equivalence_case(
    flows: int = 80,
    duration: float = 12.0,
    seed: int = 0,
    preset: str = "small",
    tick: float = 0.01,
    mean_size: float = 6000.0,
    monitor_period: float = 0.25,
    use_numpy: Optional[bool] = None,
    fault_rows=None,
) -> Dict:
    """Run one population through both engines and report the deltas.

    ``fault_rows`` (primitive :meth:`FaultSchedule.to_params` rows) arms
    the *same* disruption against both engines, extending the gate to
    outage cases: the packet engine re-pins stalled flows through the
    requirement steerer while the fluid engine re-steers stalled tenants,
    and the two must still agree distributionally.
    """
    if flows > 100:
        raise ValueError(
            f"equivalence cases are defined for <=100 flows, got {flows} "
            "(full packet-level at fleet scale is the thing we are avoiding)"
        )
    spec = PopulationSpec(
        tenants=flows, duration=duration, seed=seed, mean_size=mean_size
    )
    population = TenantPopulation.generate(spec)
    full = _run_full(population, preset, duration, seed, monitor_period, fault_rows)
    hybrid = _run_hybrid(
        population, preset, duration, seed, monitor_period, tick, use_numpy,
        fault_rows,
    )
    deltas = {
        "fct_p50_rel": _relative(
            percentile(hybrid["fct"], 50), percentile(full["fct"], 50)
        ),
        "fct_p90_rel": _relative(
            percentile(hybrid["fct"], 90), percentile(full["fct"], 90)
        ),
        "fct_p50_abs": abs(
            percentile(hybrid["fct"], 50) - percentile(full["fct"], 50)
        ),
        "fct_p90_abs": abs(
            percentile(hybrid["fct"], 90) - percentile(full["fct"], 90)
        ),
        "util_abs": {
            name: abs(hybrid["utilization"][name] - full["utilization"][name])
            for name in full["utilization"]
        },
        "completion_full": full["completed"] / max(full["tenants"], 1),
        "completion_hybrid": hybrid["completed"] / max(hybrid["tenants"], 1),
    }
    return {"full": full, "hybrid": hybrid, "deltas": deltas}


def _relative(value: float, reference: float) -> float:
    if reference <= 0:
        return 0.0 if value <= 0 else float("inf")
    return abs(value - reference) / reference


def check_equivalence(
    report: Dict, tolerance: ValidationTolerance = ValidationTolerance()
) -> List[str]:
    """Violations of the documented tolerance (empty list = gate passes)."""
    deltas = report["deltas"]
    violations: List[str] = []
    for q, rel_tol in (("p50", tolerance.fct_p50_rel), ("p90", tolerance.fct_p90_rel)):
        rel = deltas[f"fct_{q}_rel"]
        absd = deltas.get(f"fct_{q}_abs", float("inf"))
        if rel > rel_tol and absd > tolerance.fct_abs_grace:
            violations.append(
                f"FCT {q} off by {rel:.2%} / {absd * 1000:.1f} ms "
                f"(tolerance {rel_tol:.0%} rel and "
                f"{tolerance.fct_abs_grace * 1000:.0f} ms abs)"
            )
    for name, delta in deltas["util_abs"].items():
        if delta > tolerance.util_abs:
            violations.append(
                f"channel {name!r} utilization off by {delta:.3f} "
                f"(tolerance {tolerance.util_abs})"
            )
    for key in ("completion_full", "completion_hybrid"):
        if deltas[key] < tolerance.min_completion:
            violations.append(
                f"{key} = {deltas[key]:.2%} < {tolerance.min_completion:.0%}"
            )
    return violations
