"""The fluid background engine: per-tenant rate ODEs on a coarse timer.

Grounded in the fluid-model analysis of TCP over heterogeneous paths
(arXiv:1804.02496): each background tenant is a rate variable x_i(t)
evolving under AIMD-style dynamics against its channel's *load* — the
fraction of raw capacity consumed by every fluid tenant plus the
packet-level foreground traffic measured from the link's busy time. The
aggregate per-channel rate is installed on the corresponding
:class:`~repro.net.link.Link` as background load, which (a) slows the
packet-level serializer, (b) shows up in steering's ``ChannelView`` rates
and (c) is sampled by :class:`~repro.net.monitor.ChannelMonitor` — one
coherent world across both fidelities.

Per tick of length ``dt`` (default 10 ms, i.e. coarse against the wheel's
1 ms buckets but fine against multi-second transfers):

* below its load target a tenant grows — exponentially while far below
  its fair share (slow-start analogue), else additively at
  ``gain * MSS * 8 / RTT^2`` (the classic 1-packet-per-RTT fluid term);
* past the target it decays multiplicatively, ``exp(-beta * overload *
  dt / RTT)`` — the continuous-time shape of AIMD backoff, with
  delay-sensitive classes/CCAs reacting at lower targets (they see the
  queue build before loss-based flows see drops).

The update is vectorized with numpy when available; a pure-python tick
with identical structure keeps the engine dependency-free (the two
backends agree to float noise, not bit-for-bit — a run always uses one).
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, List, Optional

from repro.errors import ScenarioError
from repro.fleet.tenants import TenantPopulation
from repro.steering.requirements import REQUIREMENT_CLASSES, assignment_table

try:  # optional acceleration; the pure-python tick is the fallback
    import numpy as _np
except Exception:  # pragma: no cover - exercised where numpy is absent
    _np = None

#: Fluid congestion-control flavours: how a tenant's rate ODE behaves.
#: ``beta_scale`` multiplies its class's backoff, ``gain`` scales the
#: additive-increase term, ``target`` caps the load target (delay-based
#: CCAs yield before the link saturates; loss-based ones push to 1.0).
FLUID_CCAS: Dict[str, Dict[str, float]] = {
    "cubic": {"beta_scale": 1.0, "gain": 1.0, "target": 1.0},
    "reno": {"beta_scale": 1.4, "gain": 0.7, "target": 1.0},
    "bbr": {"beta_scale": 0.6, "gain": 1.4, "target": 1.0},
    "vegas": {"beta_scale": 0.9, "gain": 0.8, "target": 0.90},
    "vivace": {"beta_scale": 0.8, "gain": 0.9, "target": 0.92},
}

MSS_BITS = 1448 * 8
#: Initial-window analogue: 10 packets per RTT.
INITIAL_PACKETS = 10
IW_BYTES = INITIAL_PACKETS * 1448
#: Floor so an active tenant always makes *some* progress (1 kbit/s).
MIN_RATE_BPS = 1_000.0
#: The fluid aggregate never occupies more than this share of a link —
#: total foreground starvation (rate 0) is an outage, not congestion.
MAX_BG_SHARE = 0.95
#: Feedback clamp: one tick's multiplicative decay saturates here.
MAX_OVERLOAD = 1.0


class FluidBackground:
    """Steps a tenant population as fluid flows on the simulation kernel.

    ``channels`` is the network's channel list (data direction = uplink,
    matching foreground client->server transfers; ACK load rides the
    downlink at ``ack_fraction``).
    """

    def __init__(
        self,
        sim,
        channels,
        population: TenantPopulation,
        tick: float = 0.01,
        horizon: Optional[float] = None,
        ack_fraction: float = 0.05,
        use_numpy: Optional[bool] = None,
        obs=None,
        sense_foreground: bool = True,
    ) -> None:
        if tick <= 0:
            raise ScenarioError(f"tick must be positive, got {tick}")
        self.sim = sim
        self.channels = list(channels)
        if not self.channels:
            raise ScenarioError("fluid background needs at least one channel")
        self.population = population
        self.tick = tick
        self.horizon = horizon
        self.ack_fraction = ack_fraction
        self.obs = obs
        #: When False the ODEs ignore measured packet-level traffic —
        #: coupling becomes one-way (background shapes foreground, not
        #: vice versa) but the background evolution is bit-identical no
        #: matter what foreground runs alongside, which is what lets
        #: shards replay it and assert a common digest.
        self.sense_foreground = sense_foreground
        self._gauge_active = (
            obs.registry.gauge("fleet.active_tenants") if obs is not None else None
        )
        if use_numpy is None:
            use_numpy = _np is not None
        if use_numpy and _np is None:
            raise ScenarioError("numpy backend requested but numpy is unavailable")
        self.backend = "numpy" if use_numpy else "python"

        n = len(population)
        classes = sorted(REQUIREMENT_CLASSES)
        ccas = sorted(FLUID_CCAS)
        class_index = {name: i for i, name in enumerate(classes)}
        cca_index = {name: i for i, name in enumerate(ccas)}
        for name in population.ccas:
            if name not in cca_index:
                known = ", ".join(ccas)
                raise ScenarioError(f"no fluid model for CCA {name!r}; known: {known}")
        self._class_names = classes
        self._cca_names = ccas
        # Per-tenant combined ODE parameters (class manners x CCA flavour).
        target = []
        beta = []
        gain = []
        for rclass, cca in zip(population.classes, population.ccas):
            cls = REQUIREMENT_CLASSES[rclass]
            cc = FLUID_CCAS[cca]
            target.append(min(cls.load_target, cc["target"]))
            beta.append(cls.backoff * cc["beta_scale"])
            gain.append(cc["gain"])
        self._class_id = [class_index[c] for c in population.classes]
        self._cca_id = [cca_index[c] for c in population.ccas]

        if self.backend == "numpy":
            self._arrival = _np.asarray(population.arrivals, dtype=_np.float64)
            self._remaining = _np.asarray(population.sizes, dtype=_np.float64)
            # Slow-start round-trip count for each size: a packet-level
            # flow needs ceil(log2(S/IW + 1)) RTTs of window growth to
            # move S bytes, no matter how idle the link is.
            self._ss_rounds = _np.maximum(
                _np.ceil(_np.log2(self._remaining / IW_BYTES + 1.0)), 1.0
            )
            self._rate = _np.zeros(n, dtype=_np.float64)
            self._channel = _np.full(n, -1, dtype=_np.int64)
            self._active = _np.zeros(n, dtype=bool)
            self._done = _np.zeros(n, dtype=bool)
            self._fct = _np.full(n, _np.nan, dtype=_np.float64)
            self._target = _np.asarray(target)
            self._beta = _np.asarray(beta)
            self._gain = _np.asarray(gain)
            self._cca_arr = _np.asarray(self._cca_id, dtype=_np.int64)
            self._class_arr = _np.asarray(self._class_id, dtype=_np.int64)
        else:
            self._arrival = list(population.arrivals)
            self._remaining = [float(s) for s in population.sizes]
            self._ss_rounds = [
                max(math.ceil(math.log2(s / IW_BYTES + 1.0)), 1.0)
                for s in population.sizes
            ]
            self._rate = [0.0] * n
            self._channel = [-1] * n
            self._active = [False] * n
            self._done = [False] * n
            self._fct = [math.nan] * n
            self._target = target
            self._beta = beta
            self._gain = gain

        # Per-tenant stall bookkeeping: when a tenant's channel fails (or
        # no channel is live at admission) it stalls until re-steered to a
        # live channel; totals feed the resilience scorecard.
        if self.backend == "numpy":
            self._stalled_at = _np.full(n, _np.nan, dtype=_np.float64)
        else:
            self._stalled_at = [math.nan] * n
        self.stall_events = 0
        self.stall_time_total = 0.0
        self.stall_events_by_class = {name: 0 for name in classes}
        self.stall_time_by_class = {name: 0.0 for name in classes}
        # React to Channel.fail()/restore() at event time, not tick time:
        # a failed channel must shed its installed background load
        # immediately (a micro-outage between ticks would otherwise be
        # invisible and keep charging bytes through the dead window).
        for ch in self.channels:
            ch.on_transition.append(self._on_channel_transition)

        self._cursor = 0  # population is arrival-sorted
        self._last_time: Optional[float] = None
        self._last_busy = [ch.uplink.stats.busy_time for ch in self.channels]
        self._last_avail = [ch.uplink.capacity_bps() for ch in self.channels]
        self._bg_byte_accum = [0.0] * len(self.channels)  # data direction
        self._ack_byte_accum = [0.0] * len(self.channels)
        self.bytes_by_cca = {name: 0.0 for name in ccas}
        self.bytes_by_class = {name: 0.0 for name in classes}
        self.bytes_by_channel = [0.0] * len(self.channels)
        self._up_set: Optional[tuple] = None
        self._table: Dict[str, Optional[int]] = {}
        self.ticks = 0
        self._event = None
        self._stopped = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the first tick (idempotent)."""
        if self._event is None and not self._stopped:
            self._last_time = self.sim.now
            self._event = self.sim.schedule(self.tick, self._on_tick)

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _on_channel_transition(self, channel, up: bool, now: float) -> None:
        """Event-time reaction to a channel up/down transition.

        On *down* the installed background load is cleared at once and
        every tenant on the channel is stalled with its rate zeroed; the
        next tick re-steers them through the assignment table, entering
        via the slow-start re-ramp (the same path fresh arrivals take).
        On *up* nothing happens here — re-steering is tick-driven.
        """
        if up:
            return
        try:
            idx = self.channels.index(channel)
        except ValueError:  # pragma: no cover - foreign channel
            return
        channel.uplink.set_background_load(0.0)
        channel.downlink.set_background_load(0.0)
        self._last_avail[idx] = 0.0
        if self.backend == "numpy":
            on = self._active & (self._channel == idx)
            if on.any():
                self._rate[on] = 0.0
                self._channel[on] = -2
                fresh = on & _np.isnan(self._stalled_at)
                self._stalled_at[fresh] = now
        else:
            for i in range(self._cursor):
                if self._active[i] and self._channel[i] == idx:
                    self._rate[i] = 0.0
                    self._channel[i] = -2
                    if math.isnan(self._stalled_at[i]):
                        self._stalled_at[i] = now

    def _close_stall(self, tenant: int, now: float) -> None:
        """Record the end of one tenant's stall interval."""
        duration = now - self._stalled_at[tenant]
        self._stalled_at[tenant] = math.nan
        name = self._class_names[self._class_id[tenant]]
        self.stall_events += 1
        self.stall_time_total += duration
        self.stall_events_by_class[name] += 1
        self.stall_time_by_class[name] += duration

    def _on_tick(self) -> None:
        self._event = None
        self.step()
        if self._stopped:
            return
        if self.horizon is None or self.sim.now + self.tick <= self.horizon + 1e-12:
            self._event = self.sim.schedule(self.tick, self._on_tick)

    # ------------------------------------------------------------------
    # The tick
    # ------------------------------------------------------------------
    def step(self) -> None:
        now = self.sim.now
        dt = now - self._last_time if self._last_time is not None else self.tick
        self._last_time = now
        if dt <= 0:
            return
        self.ticks += 1

        up_set = tuple(ch.up for ch in self.channels)
        if up_set != self._up_set:
            self._up_set = up_set
            self._table = assignment_table(self._class_names, self.channels)
        table_idx = [
            self._table.get(name) if self._table.get(name) is not None else -1
            for name in self._class_names
        ]

        caps = [
            ch.uplink.capacity_bps() if ch.up else 0.0 for ch in self.channels
        ]
        rtts = [max(ch.base_rtt(), 1e-4) for ch in self.channels]
        # Foreground usage estimate: the serializer was busy for
        # delta(busy_time) out of dt, at the previously *available* rate.
        fg = []
        for i, ch in enumerate(self.channels):
            busy = ch.uplink.stats.busy_time
            delta = busy - self._last_busy[i]
            self._last_busy[i] = busy
            est = (delta / dt) * self._last_avail[i]
            fg.append(min(max(est, 0.0), caps[i]))
        if not self.sense_foreground:
            fg = [0.0] * len(self.channels)

        if self.backend == "numpy":
            applied = self._step_numpy(now, dt, table_idx, caps, rtts, fg)
        else:
            applied = self._step_python(now, dt, table_idx, caps, rtts, fg)

        # Install the aggregate load and charge the byte meters.
        for i, ch in enumerate(self.channels):
            load = applied[i]
            ch.uplink.set_background_load(load)
            ch.downlink.set_background_load(load * self.ack_fraction)
            self._last_avail[i] = max(caps[i] - load, 0.0)
            whole = int(self._bg_byte_accum[i])
            if whole:
                ch.uplink.stats.background_bytes += whole
                self._bg_byte_accum[i] -= whole
            ack_whole = int(self._ack_byte_accum[i])
            if ack_whole:
                ch.downlink.stats.background_bytes += ack_whole
                self._ack_byte_accum[i] -= ack_whole
        if self._gauge_active is not None:
            self._gauge_active.set(self.active_count())

    # -- numpy backend --------------------------------------------------
    def _step_numpy(self, now, dt, table_idx, caps, rtts, fg) -> List[float]:
        np = _np
        # 1. Admit arrivals (population is arrival-sorted).
        n = len(self._arrival)
        cur = self._cursor
        while cur < n and self._arrival[cur] <= now:
            cur += 1
        if cur > self._cursor:
            fresh = np.arange(self._cursor, cur)
            self._active[fresh] = True
            self._cursor = cur
            self._channel[fresh] = -2  # force (re)assignment below
        # 2. (Re)assign tenants with no live channel.
        table = np.asarray(table_idx, dtype=np.int64)
        chan_up = np.asarray([c > 0 for c in caps], dtype=bool)
        act = self._active
        chan = self._channel
        lost = act & ((chan < 0) | ~np.where(chan >= 0, chan_up[np.clip(chan, 0, None)], False))
        if lost.any():
            wanted = table[self._class_arr[lost]]
            chan[lost] = wanted
            rtt_arr = np.asarray(rtts)
            ok = wanted >= 0
            idx = np.flatnonzero(lost)
            assigned = idx[ok]
            self._rate[assigned] = (
                INITIAL_PACKETS * MSS_BITS / rtt_arr[wanted[ok]]
            )
            self._rate[idx[~ok]] = 0.0
            # Stall accounting: re-steering to a live channel closes a
            # stall; failing to find one opens it (total blackout).
            st = self._stalled_at
            for t in assigned[~np.isnan(st[assigned])]:
                self._close_stall(int(t), now)
            unassigned = idx[~ok]
            st[unassigned[np.isnan(st[unassigned])]] = now
        live = act & (chan >= 0)
        if not live.any():
            return [0.0] * len(self.channels)
        ch_live = chan[live]
        # 3. Per-channel load from fluid rates + measured foreground.
        nch = len(self.channels)
        sums = np.bincount(ch_live, weights=self._rate[live], minlength=nch)
        caps_arr = np.asarray(caps)
        fg_arr = np.asarray(fg)
        safe_caps = np.where(caps_arr > 0, caps_arr, 1.0)
        load = np.where(caps_arr > 0, (sums + fg_arr) / safe_caps, np.inf)
        counts = np.bincount(ch_live, minlength=nch).astype(np.float64)
        counts = np.maximum(counts, 1.0)
        rtt_arr = np.asarray(rtts)
        # 4. The ODE update, vectorized over live tenants.
        li = np.flatnonzero(live)
        c = ch_live
        rate = self._rate[li]
        target = self._target[li]
        beta = self._beta[li]
        gain = self._gain[li]
        rtt = rtt_arr[c]
        overload = load[c] - target
        dec = overload > 0
        rate = np.where(
            dec,
            rate * np.exp(-beta * np.minimum(overload, MAX_OVERLOAD) * dt / rtt),
            rate,
        )
        share = caps_arr[c] * target / counts[c]
        grow = ~dec
        ss = grow & (rate < 0.5 * share)
        rate = np.where(ss, np.minimum(rate * 2.0 ** (dt / rtt), share), rate)
        ai = grow & ~ss
        rate = np.where(ai, rate + gain * MSS_BITS * dt / (rtt * rtt), rate)
        remaining = self._remaining[li]
        rate = np.clip(rate, MIN_RATE_BPS, np.maximum(remaining * 8.0 / dt, MIN_RATE_BPS))
        rate = np.minimum(rate, caps_arr[c])
        # 5. Per-channel ceiling: never occupy more than MAX_BG_SHARE.
        new_sums = np.bincount(c, weights=rate, minlength=nch)
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(
                new_sums > 0,
                np.minimum(1.0, MAX_BG_SHARE * caps_arr / np.where(new_sums > 0, new_sums, 1.0)),
                1.0,
            )
        eff = rate * scale[c]
        sent = np.minimum(eff * dt / 8.0, remaining)
        remaining = remaining - sent
        self._rate[li] = rate
        self._remaining[li] = remaining
        # 6. Byte accounting.
        sent_by_ch = np.bincount(c, weights=sent, minlength=nch)
        for i in range(nch):
            self._bg_byte_accum[i] += sent_by_ch[i]
            self._ack_byte_accum[i] += sent_by_ch[i] * self.ack_fraction
            self.bytes_by_channel[i] += sent_by_ch[i]
        cca_sent = np.bincount(
            self._cca_arr[li], weights=sent, minlength=len(self._cca_names)
        )
        for i, name in enumerate(self._cca_names):
            self.bytes_by_cca[name] += cca_sent[i]
        class_sent = np.bincount(
            self._class_arr[li], weights=sent, minlength=len(self._class_names)
        )
        for i, name in enumerate(self._class_names):
            self.bytes_by_class[name] += class_sent[i]
        # 7. Completions.
        finished = remaining <= 1e-6
        if finished.any():
            done_idx = li[finished]
            self._done[done_idx] = True
            self._active[done_idx] = False
            # Slow-start floor (Cardwell-style latency model): a
            # packet-level flow pays ceil(log2(S/IW + 1)) round trips
            # of window growth even on an idle link; the continuous
            # rate integral would finish sub-window transfers in a
            # fraction of an RTT. Under contention the elapsed fluid
            # time exceeds the floor and wins the max.
            self._fct[done_idx] = np.maximum(
                now - self._arrival[done_idx],
                rtt_arr[chan[done_idx]] * self._ss_rounds[done_idx],
            )
        applied = np.bincount(
            c[~finished], weights=eff[~finished], minlength=nch
        )
        applied = np.minimum(applied, MAX_BG_SHARE * caps_arr)
        return [float(x) for x in applied]

    # -- pure-python backend --------------------------------------------
    def _step_python(self, now, dt, table_idx, caps, rtts, fg) -> List[float]:
        n = len(self._arrival)
        cur = self._cursor
        while cur < n and self._arrival[cur] <= now:
            self._active[cur] = True
            self._channel[cur] = -2
            cur += 1
        self._cursor = cur
        nch = len(self.channels)
        chan_up = [c > 0 for c in caps]
        sums = [0.0] * nch
        counts = [0] * nch
        live: List[int] = []
        for i in range(cur):
            if not self._active[i]:
                continue
            c = self._channel[i]
            if c < 0 or not chan_up[c]:
                c = table_idx[self._class_id[i]]
                self._channel[i] = c
                if c < 0:
                    if math.isnan(self._stalled_at[i]):
                        self._stalled_at[i] = now
                    self._rate[i] = 0.0
                    continue
                if not math.isnan(self._stalled_at[i]):
                    self._close_stall(i, now)
                self._rate[i] = INITIAL_PACKETS * MSS_BITS / rtts[c]
            live.append(i)
            sums[c] += self._rate[i]
            counts[c] += 1
        if not live:
            return [0.0] * nch
        load = [
            (sums[c] + fg[c]) / caps[c] if caps[c] > 0 else math.inf
            for c in range(nch)
        ]
        new_sums = [0.0] * nch
        for i in live:
            c = self._channel[i]
            rate = self._rate[i]
            rtt = rtts[c]
            overload = load[c] - self._target[i]
            if overload > 0:
                rate *= math.exp(
                    -self._beta[i] * min(overload, MAX_OVERLOAD) * dt / rtt
                )
            else:
                share = caps[c] * self._target[i] / max(counts[c], 1)
                if rate < 0.5 * share:
                    rate = min(rate * 2.0 ** (dt / rtt), share)
                else:
                    rate += self._gain[i] * MSS_BITS * dt / (rtt * rtt)
            cap = max(self._remaining[i] * 8.0 / dt, MIN_RATE_BPS)
            rate = min(max(rate, MIN_RATE_BPS), cap, caps[c])
            self._rate[i] = rate
            new_sums[c] += rate
        scale = [
            min(1.0, MAX_BG_SHARE * caps[c] / new_sums[c]) if new_sums[c] > 0 else 1.0
            for c in range(nch)
        ]
        applied = [0.0] * nch
        for i in live:
            c = self._channel[i]
            eff = self._rate[i] * scale[c]
            sent = min(eff * dt / 8.0, self._remaining[i])
            self._remaining[i] -= sent
            self._bg_byte_accum[c] += sent
            self._ack_byte_accum[c] += sent * self.ack_fraction
            self.bytes_by_channel[c] += sent
            self.bytes_by_cca[self._cca_names[self._cca_id[i]]] += sent
            self.bytes_by_class[self._class_names[self._class_id[i]]] += sent
            if self._remaining[i] <= 1e-6:
                self._done[i] = True
                self._active[i] = False
                # Same slow-start floor as the numpy backend.
                self._fct[i] = max(
                    now - self._arrival[i], rtts[c] * self._ss_rounds[i]
                )
            else:
                applied[c] += eff
        return [min(applied[c], MAX_BG_SHARE * caps[c]) for c in range(nch)]

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def active_count(self) -> int:
        if self.backend == "numpy":
            return int(self._active.sum())
        return sum(self._active)

    def completed_count(self) -> int:
        if self.backend == "numpy":
            return int(self._done.sum())
        return sum(self._done)

    def stalled_count(self) -> int:
        """Tenants currently stalled (no live channel assigned)."""
        if self.backend == "numpy":
            return int(_np.count_nonzero(~_np.isnan(self._stalled_at)))
        return sum(1 for s in self._stalled_at if not math.isnan(s))

    def fct_samples(self) -> List[float]:
        """Completion times of finished tenants, in tenant order."""
        if self.backend == "numpy":
            return [float(x) for x in self._fct[self._done]]
        return [self._fct[i] for i in range(len(self._fct)) if self._done[i]]

    def fct_by_class(self) -> Dict[str, List[float]]:
        out: Dict[str, List[float]] = {name: [] for name in self._class_names}
        done = self._done
        for i in range(len(self._arrival)):
            if done[i]:
                out[self._class_names[self._class_id[i]]].append(float(self._fct[i]))
        return out

    def results(self) -> Dict:
        return {
            "backend": self.backend,
            "ticks": self.ticks,
            "tenants": len(self.population),
            "completed": self.completed_count(),
            "active_at_end": self.active_count(),
            "fct": self.fct_samples(),
            "bytes_by_cca": {k: round(v, 3) for k, v in self.bytes_by_cca.items()},
            "bytes_by_class": {k: round(v, 3) for k, v in self.bytes_by_class.items()},
            "bytes_by_channel": [round(v, 3) for v in self.bytes_by_channel],
            "stalls": {
                "events": self.stall_events,
                "time_total_s": round(self.stall_time_total, 6),
                "events_by_class": dict(self.stall_events_by_class),
                "time_by_class_s": {
                    k: round(v, 6) for k, v in self.stall_time_by_class.items()
                },
                "stalled_at_end": self.stalled_count(),
            },
        }

    def digest(self) -> str:
        """Deterministic fingerprint of the full tenant state.

        Shards re-run the identical background world; the runner asserts
        their digests match, which catches any nondeterminism (or a shard
        accidentally perturbing the background) before results merge.
        """
        h = hashlib.sha256()
        for i in range(len(self._arrival)):
            h.update(
                (
                    f"{i}:{self._remaining[i]:.6f}:{self._rate[i]:.6f}:"
                    f"{int(self._done[i])}:{self._fct[i]:.9f}:"
                    f"{int(not math.isnan(self._stalled_at[i]))};"
                ).encode()
            )
        return h.hexdigest()
