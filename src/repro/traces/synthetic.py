"""Synthetic 5G traces calibrated to the statistics the paper reports.

The DChannel traces (NSDI '23) used by the paper are not public, so we
generate traces from a two-regime (normal / degraded) Markov process with
AR(1)-smoothed rates and delay excursions during degraded periods:

* **Lowband stationary** — ~60 Mbps steady, ~50 ms RTT, mild jitter.
* **Lowband driving** — same means but frequent dips and delay spikes; the
  98th-percentile RTT lands near the published 236 ms.
* **mmWave stationary** — multi-hundred-Mbps, ~20 ms RTT.
* **mmWave driving** — very high rate punctuated by blockage outages lasting
  up to seconds (this produces the multi-second eMBB-only latency tail of
  Fig. 2).

Rates/delays are *channel* characteristics; queueing on top of them emerges
in the link simulation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import TraceError
from repro.traces.model import NetworkTrace
from repro.units import mbps, ms


@dataclass
class TraceSpec:
    """Parameters of the two-regime generator."""

    name: str
    duration: float = 120.0
    dt: float = 0.1
    # Normal regime.
    mean_rate_bps: float = mbps(60)
    rate_jitter: float = 0.08  # lognormal sigma around the regime mean
    base_delay: float = ms(25)  # one-way
    delay_jitter: float = ms(2)
    # Degraded regime (mobility dips / mmWave blockage).
    degrade_rate_per_s: float = 0.0  # entry rate (per second)
    degrade_duration_mean: float = 1.0  # seconds, exponential
    degraded_rate_bps: float = mbps(5)
    degraded_delay: float = ms(100)  # one-way delay plateau while degraded
    # AR(1) smoothing coefficient for the rate process.
    smoothing: float = 0.7
    rate_floor_bps: float = mbps(0.1)

    def validate(self) -> None:
        if self.duration <= 0 or self.dt <= 0:
            raise TraceError("duration and dt must be positive")
        if self.dt >= self.duration:
            raise TraceError("dt must be smaller than duration")
        if self.mean_rate_bps <= 0:
            raise TraceError("mean_rate_bps must be positive")
        if not 0.0 <= self.smoothing < 1.0:
            raise TraceError("smoothing must be in [0, 1)")


def generate_trace(spec: TraceSpec, seed: int = 0) -> NetworkTrace:
    """Generate a trace deterministically from ``spec`` and ``seed``."""
    spec.validate()
    rng = random.Random(seed)
    steps = int(round(spec.duration / spec.dt))
    times = []
    rates = []
    delays = []

    degraded_until = -1.0
    rate = spec.mean_rate_bps
    delay = spec.base_delay
    p_enter = 1.0 - math.exp(-spec.degrade_rate_per_s * spec.dt)

    for i in range(steps):
        t = i * spec.dt
        degraded = t < degraded_until
        if not degraded and rng.random() < p_enter:
            degraded_until = t + rng.expovariate(1.0 / spec.degrade_duration_mean)
            degraded = True

        if degraded:
            target_rate = spec.degraded_rate_bps * rng.lognormvariate(0.0, 0.5)
            target_delay = spec.degraded_delay * (0.7 + 0.6 * rng.random())
        else:
            target_rate = spec.mean_rate_bps * rng.lognormvariate(0.0, spec.rate_jitter)
            target_delay = spec.base_delay + rng.gauss(0.0, spec.delay_jitter)

        rate = spec.smoothing * rate + (1.0 - spec.smoothing) * target_rate
        delay = spec.smoothing * delay + (1.0 - spec.smoothing) * target_delay
        times.append(round(t, 9))
        rates.append(max(spec.rate_floor_bps, rate))
        delays.append(max(ms(1), delay))

    return NetworkTrace(times, rates, delays, name=spec.name)


# ----------------------------------------------------------------------
# Named profiles (calibration targets in the docstrings)
# ----------------------------------------------------------------------

def lowband_stationary(seed: int = 1, duration: float = 120.0) -> NetworkTrace:
    """5G Lowband eMBB, stationary UE: ~60 Mbps, ~50 ms RTT, mild jitter."""
    spec = TraceSpec(
        name="5g-lowband-stationary",
        duration=duration,
        mean_rate_bps=mbps(60),
        rate_jitter=0.06,
        base_delay=ms(25),
        delay_jitter=ms(2),
        degrade_rate_per_s=0.01,
        degrade_duration_mean=0.5,
        degraded_rate_bps=mbps(25),
        degraded_delay=ms(45),
    )
    return generate_trace(spec, seed)


def lowband_driving(seed: int = 2, duration: float = 120.0) -> NetworkTrace:
    """5G Lowband eMBB, driving UE.

    Calibrated so the RTT's 98th percentile is near the published 236 ms
    (one-way delay ≈ 118 ms) with frequent rate dips under mobility.
    """
    spec = TraceSpec(
        name="5g-lowband-driving",
        duration=duration,
        mean_rate_bps=mbps(55),
        rate_jitter=0.25,
        base_delay=ms(30),
        delay_jitter=ms(10),
        degrade_rate_per_s=0.14,
        degrade_duration_mean=1.6,
        degraded_rate_bps=mbps(7),
        degraded_delay=ms(110),
    )
    return generate_trace(spec, seed)


def mmwave_stationary(seed: int = 3, duration: float = 120.0) -> NetworkTrace:
    """5G mmWave eMBB, stationary UE: very high rate, ~20 ms RTT."""
    spec = TraceSpec(
        name="5g-mmwave-stationary",
        duration=duration,
        mean_rate_bps=mbps(900),
        rate_jitter=0.15,
        base_delay=ms(10),
        delay_jitter=ms(1.5),
        degrade_rate_per_s=0.02,
        degrade_duration_mean=0.4,
        degraded_rate_bps=mbps(100),
        degraded_delay=ms(30),
    )
    return generate_trace(spec, seed)


def starlink_leo(
    seed: int = 5,
    duration: float = 120.0,
    handoff_period: float = 15.0,
    handoff_phase: float = 4.0,
    outage_mean: float = 0.3,
    dt: float = 0.1,
) -> NetworkTrace:
    """Starlink-like LEO access: periodic handoff micro-outages, high jitter.

    LEO constellations reschedule the serving satellite on a fixed cadence
    (~15 s for Starlink); each handoff is a short *dead* interval — the
    trace rate drops to exactly 0 for a few hundred milliseconds — followed
    by a rate step as the new satellite's link budget differs from the old.
    Between handoffs the rate is high but jittery (beam scheduling) and the
    one-way delay wanders with path length. The dead intervals are real
    zeros, not merely low rates, so :meth:`FaultSchedule.from_trace`
    recovers them exactly as outage faults.

    ``handoff_phase`` places the first handoff early enough that even a
    short (quick-mode) run meets at least one disruption.
    """
    if duration <= 0 or dt <= 0 or dt >= duration:
        raise TraceError("duration and dt must be positive with dt < duration")
    if handoff_period <= 0 or handoff_phase < 0:
        raise TraceError("handoff_period must be positive, handoff_phase >= 0")
    rng = random.Random(seed)
    steps = int(round(duration / dt))
    times, rates, delays = [], [], []
    # Handoff instants, snapped to the sample grid so dead intervals are
    # exact sample runs (what from_trace recovers).
    next_handoff = handoff_phase
    outage_left = 0
    rate_level = mbps(140)
    delay_level = ms(28)
    for i in range(steps):
        t = i * dt
        if outage_left == 0 and next_handoff <= t:
            # Enter a micro-outage: 1..n dead samples (~outage_mean s).
            outage_left = max(1, int(round(rng.expovariate(1.0 / outage_mean) / dt)))
            outage_left = min(outage_left, max(1, int(1.2 / dt)))
            next_handoff += handoff_period
            # The new satellite: a fresh link budget and path length.
            rate_level = mbps(140) * rng.lognormvariate(0.0, 0.25)
            delay_level = ms(28) + rng.gauss(0.0, ms(4))
        times.append(round(t, 9))
        if outage_left > 0:
            outage_left -= 1
            rates.append(0.0)
            delays.append(max(ms(1), delay_level))
            continue
        # High jitter between handoffs: beam scheduling + queue wander.
        rates.append(max(mbps(1), rate_level * rng.lognormvariate(0.0, 0.2)))
        delays.append(max(ms(2), delay_level + rng.gauss(0.0, ms(6))))
    return NetworkTrace(times, rates, delays, name="starlink-leo")


def wifi_5g_handoff(
    seed: int = 6,
    duration: float = 120.0,
    dwell_mean: float = 8.0,
    gap_mean: float = 0.15,
    dt: float = 0.05,
) -> NetworkTrace:
    """A device oscillating between Wi-Fi and 5G coverage.

    Two regimes — Wi-Fi (fat, ~6 ms one-way) and 5G lowband (thinner,
    ~18 ms one-way) — with exponential dwell times. Every switch passes
    through a short *dead* gap (association + path migration) during which
    the rate is exactly 0, and the first seconds on the new radio carry a
    delay spike while queues re-home. Dead gaps are exact zero-rate sample
    runs, so the trace doubles as a fault campaign via
    :meth:`FaultSchedule.from_trace`.
    """
    if duration <= 0 or dt <= 0 or dt >= duration:
        raise TraceError("duration and dt must be positive with dt < duration")
    if dwell_mean <= 0 or gap_mean <= 0:
        raise TraceError("dwell_mean and gap_mean must be positive")
    rng = random.Random(seed)
    steps = int(round(duration / dt))
    times, rates, delays = [], [], []
    on_wifi = True
    # First handoff lands early (a fraction of one dwell) so short runs
    # still see a disruption.
    switch_at = 0.4 * dwell_mean
    gap_left = 0
    spike_left = 0
    for i in range(steps):
        t = i * dt
        if gap_left == 0 and switch_at <= t:
            gap_left = max(1, int(round(rng.expovariate(1.0 / gap_mean) / dt)))
            gap_left = min(gap_left, max(1, int(0.8 / dt)))
            on_wifi = not on_wifi
            switch_at = t + rng.expovariate(1.0 / dwell_mean)
            # Post-handoff delay inflation (~1 s) while queues re-home.
            spike_left = int(round(1.0 / dt))
        times.append(round(t, 9))
        if gap_left > 0:
            gap_left -= 1
            rates.append(0.0)
            delays.append(ms(30))
            continue
        base_rate = mbps(280) if on_wifi else mbps(70)
        base_delay = ms(6) if on_wifi else ms(18)
        if spike_left > 0:
            spike_left -= 1
            base_delay += ms(45)
        rates.append(max(mbps(2), base_rate * rng.lognormvariate(0.0, 0.12)))
        delays.append(max(ms(1), base_delay + rng.gauss(0.0, ms(1.5))))
    return NetworkTrace(times, rates, delays, name="wifi-5g-handoff")


def mmwave_driving(seed: int = 2, duration: float = 120.0) -> NetworkTrace:
    """5G mmWave eMBB, driving UE: blockage outages lasting seconds.

    During an outage the usable rate collapses below the 12 Mbps video
    bitrate and delay spikes, so queues build for seconds — the source of
    Fig. 2's extreme eMBB-only latency tail (up to ~6.4 s in the paper).
    """
    spec = TraceSpec(
        name="5g-mmwave-driving",
        duration=duration,
        mean_rate_bps=mbps(700),
        rate_jitter=0.3,
        base_delay=ms(12),
        delay_jitter=ms(3),
        degrade_rate_per_s=0.09,
        degrade_duration_mean=3.0,
        degraded_rate_bps=mbps(2.5),
        degraded_delay=ms(200),
        smoothing=0.5,
    )
    return generate_trace(spec, seed)
