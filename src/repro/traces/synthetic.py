"""Synthetic 5G traces calibrated to the statistics the paper reports.

The DChannel traces (NSDI '23) used by the paper are not public, so we
generate traces from a two-regime (normal / degraded) Markov process with
AR(1)-smoothed rates and delay excursions during degraded periods:

* **Lowband stationary** — ~60 Mbps steady, ~50 ms RTT, mild jitter.
* **Lowband driving** — same means but frequent dips and delay spikes; the
  98th-percentile RTT lands near the published 236 ms.
* **mmWave stationary** — multi-hundred-Mbps, ~20 ms RTT.
* **mmWave driving** — very high rate punctuated by blockage outages lasting
  up to seconds (this produces the multi-second eMBB-only latency tail of
  Fig. 2).

Rates/delays are *channel* characteristics; queueing on top of them emerges
in the link simulation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import TraceError
from repro.traces.model import NetworkTrace
from repro.units import mbps, ms


@dataclass
class TraceSpec:
    """Parameters of the two-regime generator."""

    name: str
    duration: float = 120.0
    dt: float = 0.1
    # Normal regime.
    mean_rate_bps: float = mbps(60)
    rate_jitter: float = 0.08  # lognormal sigma around the regime mean
    base_delay: float = ms(25)  # one-way
    delay_jitter: float = ms(2)
    # Degraded regime (mobility dips / mmWave blockage).
    degrade_rate_per_s: float = 0.0  # entry rate (per second)
    degrade_duration_mean: float = 1.0  # seconds, exponential
    degraded_rate_bps: float = mbps(5)
    degraded_delay: float = ms(100)  # one-way delay plateau while degraded
    # AR(1) smoothing coefficient for the rate process.
    smoothing: float = 0.7
    rate_floor_bps: float = mbps(0.1)

    def validate(self) -> None:
        if self.duration <= 0 or self.dt <= 0:
            raise TraceError("duration and dt must be positive")
        if self.dt >= self.duration:
            raise TraceError("dt must be smaller than duration")
        if self.mean_rate_bps <= 0:
            raise TraceError("mean_rate_bps must be positive")
        if not 0.0 <= self.smoothing < 1.0:
            raise TraceError("smoothing must be in [0, 1)")


def generate_trace(spec: TraceSpec, seed: int = 0) -> NetworkTrace:
    """Generate a trace deterministically from ``spec`` and ``seed``."""
    spec.validate()
    rng = random.Random(seed)
    steps = int(round(spec.duration / spec.dt))
    times = []
    rates = []
    delays = []

    degraded_until = -1.0
    rate = spec.mean_rate_bps
    delay = spec.base_delay
    p_enter = 1.0 - math.exp(-spec.degrade_rate_per_s * spec.dt)

    for i in range(steps):
        t = i * spec.dt
        degraded = t < degraded_until
        if not degraded and rng.random() < p_enter:
            degraded_until = t + rng.expovariate(1.0 / spec.degrade_duration_mean)
            degraded = True

        if degraded:
            target_rate = spec.degraded_rate_bps * rng.lognormvariate(0.0, 0.5)
            target_delay = spec.degraded_delay * (0.7 + 0.6 * rng.random())
        else:
            target_rate = spec.mean_rate_bps * rng.lognormvariate(0.0, spec.rate_jitter)
            target_delay = spec.base_delay + rng.gauss(0.0, spec.delay_jitter)

        rate = spec.smoothing * rate + (1.0 - spec.smoothing) * target_rate
        delay = spec.smoothing * delay + (1.0 - spec.smoothing) * target_delay
        times.append(round(t, 9))
        rates.append(max(spec.rate_floor_bps, rate))
        delays.append(max(ms(1), delay))

    return NetworkTrace(times, rates, delays, name=spec.name)


# ----------------------------------------------------------------------
# Named profiles (calibration targets in the docstrings)
# ----------------------------------------------------------------------

def lowband_stationary(seed: int = 1, duration: float = 120.0) -> NetworkTrace:
    """5G Lowband eMBB, stationary UE: ~60 Mbps, ~50 ms RTT, mild jitter."""
    spec = TraceSpec(
        name="5g-lowband-stationary",
        duration=duration,
        mean_rate_bps=mbps(60),
        rate_jitter=0.06,
        base_delay=ms(25),
        delay_jitter=ms(2),
        degrade_rate_per_s=0.01,
        degrade_duration_mean=0.5,
        degraded_rate_bps=mbps(25),
        degraded_delay=ms(45),
    )
    return generate_trace(spec, seed)


def lowband_driving(seed: int = 2, duration: float = 120.0) -> NetworkTrace:
    """5G Lowband eMBB, driving UE.

    Calibrated so the RTT's 98th percentile is near the published 236 ms
    (one-way delay ≈ 118 ms) with frequent rate dips under mobility.
    """
    spec = TraceSpec(
        name="5g-lowband-driving",
        duration=duration,
        mean_rate_bps=mbps(55),
        rate_jitter=0.25,
        base_delay=ms(30),
        delay_jitter=ms(10),
        degrade_rate_per_s=0.14,
        degrade_duration_mean=1.6,
        degraded_rate_bps=mbps(7),
        degraded_delay=ms(110),
    )
    return generate_trace(spec, seed)


def mmwave_stationary(seed: int = 3, duration: float = 120.0) -> NetworkTrace:
    """5G mmWave eMBB, stationary UE: very high rate, ~20 ms RTT."""
    spec = TraceSpec(
        name="5g-mmwave-stationary",
        duration=duration,
        mean_rate_bps=mbps(900),
        rate_jitter=0.15,
        base_delay=ms(10),
        delay_jitter=ms(1.5),
        degrade_rate_per_s=0.02,
        degrade_duration_mean=0.4,
        degraded_rate_bps=mbps(100),
        degraded_delay=ms(30),
    )
    return generate_trace(spec, seed)


def mmwave_driving(seed: int = 2, duration: float = 120.0) -> NetworkTrace:
    """5G mmWave eMBB, driving UE: blockage outages lasting seconds.

    During an outage the usable rate collapses below the 12 Mbps video
    bitrate and delay spikes, so queues build for seconds — the source of
    Fig. 2's extreme eMBB-only latency tail (up to ~6.4 s in the paper).
    """
    spec = TraceSpec(
        name="5g-mmwave-driving",
        duration=duration,
        mean_rate_bps=mbps(700),
        rate_jitter=0.3,
        base_delay=ms(12),
        delay_jitter=ms(3),
        degrade_rate_per_s=0.09,
        degrade_duration_mean=3.0,
        degraded_rate_bps=mbps(2.5),
        degraded_delay=ms(200),
        smoothing=0.5,
    )
    return generate_trace(spec, seed)
