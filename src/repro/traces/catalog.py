"""Named registry of trace profiles used throughout the experiments."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import TraceError
from repro.traces.model import NetworkTrace, constant_trace
from repro.traces.synthetic import (
    lowband_driving,
    lowband_stationary,
    mmwave_driving,
    mmwave_stationary,
    starlink_leo,
    wifi_5g_handoff,
)
from repro.units import mbps, ms


def _urllc(seed: int = 0, duration: float = 120.0) -> NetworkTrace:
    """URLLC per the paper's emulation: 2 Mbps, 5 ms RTT (2.5 ms one-way)."""
    return constant_trace(mbps(2), ms(2.5), name="urllc")


_CATALOG: Dict[str, Callable[..., NetworkTrace]] = {
    "5g-lowband-stationary": lowband_stationary,
    "5g-lowband-driving": lowband_driving,
    "5g-mmwave-stationary": mmwave_stationary,
    "5g-mmwave-driving": mmwave_driving,
    "starlink-leo": starlink_leo,
    "wifi-5g-handoff": wifi_5g_handoff,
    "urllc": _urllc,
}


def list_traces() -> List[str]:
    """Names accepted by :func:`get_trace`."""
    return sorted(_CATALOG)


def get_trace(name: str, seed: int = 0, duration: float = 120.0) -> NetworkTrace:
    """Instantiate a catalog trace by name.

    ``seed`` selects the realization for synthetic profiles (ignored for the
    constant URLLC profile).
    """
    try:
        factory = _CATALOG[name]
    except KeyError:
        known = ", ".join(list_traces())
        raise TraceError(f"unknown trace {name!r}; known traces: {known}") from None
    if name == "urllc":
        return factory(seed=seed, duration=duration)
    # Synthetic profiles default their own seeds; honor an explicit one.
    return factory(seed=seed, duration=duration) if seed else factory(duration=duration)
