"""``python -m repro.traces`` dispatches to the trace CLI."""

import sys

from repro.traces.cli import main

sys.exit(main())
