"""Trace tooling CLI: ``python -m repro.traces <command>``.

Commands::

    list                                  # catalog names
    show 5g-lowband-driving               # summary statistics
    export 5g-mmwave-driving out.trace    # write Mahimahi format
    import real.trace --delay-ms 25       # summarize a Mahimahi file
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.traces.catalog import get_trace, list_traces
from repro.traces.mahimahi import read_mahimahi, write_mahimahi
from repro.traces.model import NetworkTrace
from repro.units import ms, to_ms


def _summarize(trace: NetworkTrace) -> str:
    return (
        f"{trace.name}: duration {trace.duration:.1f}s, "
        f"rate mean {trace.mean_rate() / 1e6:.1f} Mbps "
        f"(min {trace.min_rate() / 1e6:.2f}, max {trace.max_rate() / 1e6:.1f}), "
        f"one-way delay p50 {to_ms(trace.percentile_delay(50)):.1f} ms, "
        f"p98 {to_ms(trace.percentile_delay(98)):.1f} ms"
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.traces", description="Trace catalog tooling."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list catalog trace names")

    show = sub.add_parser("show", help="summarize a catalog trace")
    show.add_argument("name")
    show.add_argument("--seed", type=int, default=0)

    export = sub.add_parser("export", help="write a catalog trace as Mahimahi")
    export.add_argument("name")
    export.add_argument("path")
    export.add_argument("--seed", type=int, default=0)
    export.add_argument("--duration", type=float, default=None)

    imp = sub.add_parser("import", help="summarize a Mahimahi trace file")
    imp.add_argument("path")
    imp.add_argument("--delay-ms", type=float, default=25.0)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for name in list_traces():
            print(name)
        return 0
    if args.command == "show":
        print(_summarize(get_trace(args.name, seed=args.seed)))
        return 0
    if args.command == "export":
        trace = get_trace(args.name, seed=args.seed)
        count = write_mahimahi(trace, args.path, duration=args.duration)
        print(f"wrote {count} delivery opportunities to {args.path}")
        return 0
    if args.command == "import":
        trace = read_mahimahi(args.path, delay=ms(args.delay_ms))
        print(_summarize(trace))
        return 0
    return 1  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
