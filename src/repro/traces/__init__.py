"""Trace substrate: time-varying channel characteristics.

The paper's eMBB channels are driven by cellular traces recorded by DChannel
(NSDI '23) under stationary and driving conditions. We cannot ship those
traces, so :mod:`repro.traces.synthetic` generates traces calibrated to the
published statistics; :mod:`repro.traces.mahimahi` can load real
Mahimahi-format traces when available.
"""

from repro.traces.model import NetworkTrace, constant_trace
from repro.traces.synthetic import (
    TraceSpec,
    generate_trace,
    lowband_stationary,
    lowband_driving,
    mmwave_stationary,
    mmwave_driving,
)
from repro.traces.catalog import get_trace, list_traces
from repro.traces.mahimahi import read_mahimahi, write_mahimahi

__all__ = [
    "NetworkTrace",
    "constant_trace",
    "TraceSpec",
    "generate_trace",
    "lowband_stationary",
    "lowband_driving",
    "mmwave_stationary",
    "mmwave_driving",
    "get_trace",
    "list_traces",
    "read_mahimahi",
    "write_mahimahi",
]
