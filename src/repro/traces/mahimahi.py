"""Mahimahi trace-format interchange.

A Mahimahi trace is a text file with one integer per line: the millisecond
timestamp of a single 1500-byte packet delivery opportunity. We convert to
and from our piecewise-rate representation by bucketing opportunities into
fixed windows, which is exactly how such traces are usually summarized.

This lets users who *do* have the DChannel/Mahimahi traces run every
experiment on the real data instead of the synthetic profiles.
"""

from __future__ import annotations

import math
import os
from typing import List, Optional

from repro.errors import TraceError
from repro.traces.model import NetworkTrace
from repro.units import ms

#: Mahimahi's fixed delivery-opportunity size.
MTU_BYTES = 1500
MTU_BITS = MTU_BYTES * 8


def read_mahimahi(
    path: str,
    bucket: float = 0.1,
    delay: float = ms(25),
    name: Optional[str] = None,
) -> NetworkTrace:
    """Load a Mahimahi trace as a piecewise-rate :class:`NetworkTrace`.

    Parameters
    ----------
    path:
        Trace file; one integer (ms) per line, non-decreasing.
    bucket:
        Averaging window in seconds for the rate estimate.
    delay:
        Mahimahi traces carry no latency information; this constant one-way
        delay is attached to every sample.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line.strip() for line in handle if line.strip()]
    if not lines:
        raise TraceError(f"mahimahi trace {path!r} is empty")
    try:
        stamps_ms = [int(line) for line in lines]
    except ValueError as exc:
        raise TraceError(f"mahimahi trace {path!r} has a non-integer line") from exc
    if any(b < a for a, b in zip(stamps_ms, stamps_ms[1:])):
        raise TraceError(f"mahimahi trace {path!r} timestamps are not sorted")
    if stamps_ms[0] < 0:
        raise TraceError(f"mahimahi trace {path!r} has a negative timestamp")

    duration = max(stamps_ms[-1] / 1000.0, bucket)
    n_buckets = max(1, int(math.ceil(duration / bucket)))
    counts = [0] * n_buckets
    for stamp in stamps_ms:
        index = min(int((stamp / 1000.0) / bucket), n_buckets - 1)
        counts[index] += 1

    times = [i * bucket for i in range(n_buckets)]
    rates = [count * MTU_BITS / bucket for count in counts]
    delays = [delay] * n_buckets
    trace_name = name if name is not None else os.path.basename(path)
    return NetworkTrace(times, rates, delays, name=trace_name)


def write_mahimahi(trace: NetworkTrace, path: str, duration: Optional[float] = None) -> int:
    """Render ``trace`` into Mahimahi format; returns opportunities written.

    Opportunities are spaced uniformly within each constant-rate span,
    carrying fractional credit across spans so the long-run rate is exact.
    """
    horizon = duration if duration is not None else trace.duration
    if horizon <= 0:
        raise TraceError(f"duration must be positive, got {horizon}")
    stamps: List[int] = []
    credit = 0.0
    step = 0.001  # evaluate per millisecond like Mahimahi itself
    t = 0.0
    while t < horizon:
        credit += trace.rate_at(t) * step / MTU_BITS
        while credit >= 1.0:
            stamps.append(int(round(t * 1000)))
            credit -= 1.0
        t += step
    with open(path, "w", encoding="utf-8") as handle:
        for stamp in stamps:
            handle.write(f"{stamp}\n")
    return len(stamps)
