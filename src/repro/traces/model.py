"""Piecewise-constant network traces.

A :class:`NetworkTrace` maps simulation time to an instantaneous link rate
(bits/s) and one-way propagation delay (seconds). Links sample it at packet
granularity (:meth:`rate_at` when serialization starts, :meth:`delay_at` when
it ends), which is the same approximation Mahimahi's shells make at the
millisecond level.

Traces loop: queries past the last sample wrap around modulo the trace
duration, so a 120 s trace can drive an arbitrarily long experiment.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Tuple

from repro.errors import TraceError


class NetworkTrace:
    """Sampled (time, rate, delay) series with step interpolation."""

    def __init__(
        self,
        times: Sequence[float],
        rates_bps: Sequence[float],
        delays: Sequence[float],
        name: str = "trace",
    ) -> None:
        if not times:
            raise TraceError("trace must contain at least one sample")
        if not (len(times) == len(rates_bps) == len(delays)):
            raise TraceError(
                f"length mismatch: {len(times)} times, {len(rates_bps)} rates, "
                f"{len(delays)} delays"
            )
        if times[0] != 0.0:
            raise TraceError(f"trace must start at t=0, got {times[0]}")
        for i in range(1, len(times)):
            if times[i] <= times[i - 1]:
                raise TraceError(f"times must be strictly increasing at index {i}")
        for rate in rates_bps:
            if rate < 0:
                raise TraceError(f"rates must be non-negative, got {rate}")
        for delay in delays:
            if delay < 0:
                raise TraceError(f"delays must be non-negative, got {delay}")
        self.times: List[float] = list(times)
        self.rates_bps: List[float] = [float(r) for r in rates_bps]
        self.delays: List[float] = [float(d) for d in delays]
        self.name = name
        # The loop period: one step past the final sample, assuming uniform
        # spacing when possible, otherwise the last sample time plus the mean
        # step.
        if len(self.times) >= 2:
            step = self.times[-1] / (len(self.times) - 1)
        else:
            step = 1.0
        self.duration = self.times[-1] + step

    def _index_at(self, t: float) -> int:
        if t < 0:
            raise TraceError(f"trace queried at negative time {t}")
        t = t % self.duration
        return bisect.bisect_right(self.times, t) - 1

    def rate_at(self, t: float) -> float:
        """Instantaneous rate (bits/s) at simulation time ``t``."""
        return self.rates_bps[self._index_at(t)]

    def delay_at(self, t: float) -> float:
        """Instantaneous one-way delay (seconds) at simulation time ``t``."""
        return self.delays[self._index_at(t)]

    # ------------------------------------------------------------------
    # Summary statistics (used for calibration tests and reporting)
    # ------------------------------------------------------------------
    def mean_rate(self) -> float:
        """Time-weighted mean rate over one loop of the trace."""
        total = 0.0
        for i, rate in enumerate(self.rates_bps):
            end = self.times[i + 1] if i + 1 < len(self.times) else self.duration
            total += rate * (end - self.times[i])
        return total / self.duration

    def percentile_delay(self, percentile: float) -> float:
        """Delay percentile across samples (unweighted; samples are uniform)."""
        if not 0 <= percentile <= 100:
            raise TraceError(f"percentile must be in [0, 100], got {percentile}")
        ordered = sorted(self.delays)
        if len(ordered) == 1:
            return ordered[0]
        rank = (percentile / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        # a + f*(b-a) is exact when a == b (a*(1-f) + b*f can round below a).
        return ordered[low] + frac * (ordered[high] - ordered[low])

    def min_rate(self) -> float:
        return min(self.rates_bps)

    def max_rate(self) -> float:
        return max(self.rates_bps)

    def scaled(self, rate_factor: float = 1.0, delay_factor: float = 1.0) -> "NetworkTrace":
        """A copy with rates/delays multiplied by the given factors."""
        return NetworkTrace(
            self.times,
            [r * rate_factor for r in self.rates_bps],
            [d * delay_factor for d in self.delays],
            name=f"{self.name}*",
        )

    def samples(self) -> List[Tuple[float, float, float]]:
        """List of (time, rate_bps, delay) tuples."""
        return list(zip(self.times, self.rates_bps, self.delays))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NetworkTrace {self.name} n={len(self.times)} dur={self.duration:.1f}s "
            f"mean={self.mean_rate() / 1e6:.1f}Mbps>"
        )


def constant_trace(rate_bps: float, delay: float, name: str = "constant") -> NetworkTrace:
    """A degenerate single-sample trace (fixed rate and delay)."""
    return NetworkTrace([0.0], [rate_bps], [delay], name=name)
