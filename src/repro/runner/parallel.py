"""Process-pool fan-out with deterministic merge and crash tolerance.

``ParallelRunner.run(units)`` returns one result per unit **in input
order**, never completion order — so an experiment assembled from the
returned list is bit-identical whether it ran serially, on one worker, or
on sixteen. ``jobs=1`` executes inline in the calling process (no pool, no
pickling of results), which is also the default every experiment uses when
no runner is passed; the parallel path exists purely to cut wall-clock.

``run`` is *strict*: the first failing unit raises, pending futures are
cancelled, and the batch is abandoned — right for the paper experiments,
where a failure means the code is wrong and partial figures are worthless.

``run_outcomes`` is *resilient*: every unit gets a :class:`UnitOutcome`
(ok / error / timeout), so one bad scenario in a 200-run chaos campaign
cannot take down the other 199. It survives the failure modes a campaign of
adversarial scenarios actually produces:

* a unit raising — recorded with its traceback, optionally retried
  (``retries``) for flaky infrastructure errors;
* a unit hanging — a per-unit wall-clock ``timeout`` kills the worker pool
  (a stuck simulation cannot be interrupted any other way), records a
  ``timeout`` outcome, and respawns the pool for the remaining units;
* a worker process dying (the ``BrokenProcessPool`` family) — the pool is
  respawned and the units that were in flight are re-run one at a time, so
  the next death is attributable to the unit that caused it;
* ``KeyboardInterrupt`` — worker processes are terminated and the interrupt
  propagates; every unit that already completed has been written to the
  cache, so re-running the same batch resumes from that checkpoint and only
  executes the unfinished units.

Completed units are cached *as they finish* (not at batch end) precisely to
make that checkpoint/resume property hold.
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    TimeoutError as FutureTimeoutError,
)
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import RunnerError, UnitTimeoutError
from repro.runner.cache import ResultCache
from repro.runner.units import RunUnit, execute_unit

#: How many unattributable pool deaths ``run_outcomes`` tolerates before
#: marking the remaining units as errors instead of respawning again. In
#: attributed (single-in-flight) mode a death indicts the unit itself and
#: does not count against this budget.
DEFAULT_MAX_POOL_RESPAWNS = 3


@dataclass
class UnitOutcome:
    """What happened to one unit under :meth:`ParallelRunner.run_outcomes`.

    ``status`` is ``"ok"`` (``value`` holds the payload), ``"error"``
    (``error`` holds the traceback or cause) or ``"timeout"`` (the unit
    exceeded the per-unit wall-clock budget and its worker was killed).
    ``attempts`` counts executions that ran to a verdict — re-runs of units
    merely *lost* to a sibling's pool kill do not increment it. ``cached``
    marks results served from the result cache without executing.
    """

    unit: RunUnit
    status: str
    value: Any = None
    error: Optional[str] = None
    attempts: int = 1
    duration: float = 0.0
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def raise_if_failed(self) -> None:
        """Re-raise a failed outcome as the matching runner exception."""
        if self.status == "timeout":
            raise UnitTimeoutError(f"unit {self.unit.key} timed out: {self.error}")
        if self.status != "ok":
            raise RunnerError(f"unit {self.unit.key} failed: {self.error}")


@dataclass
class _WorkItem:
    """One unit's position in the resilient scheduler."""

    index: int
    attempts: int = 0


class _Lost:
    __slots__ = ()


#: Sentinel: a future that yielded no usable result after a pool kill.
_LOST = _Lost()


def _salvage(future) -> Any:
    """A completed future's value after a pool kill, else ``_LOST``."""
    if not future.done() or future.cancelled():
        return _LOST
    try:
        return future.result(timeout=0)
    except BaseException:
        return _LOST


class ParallelRunner:
    """Executes :class:`RunUnit` batches, optionally caching results.

    Parameters
    ----------
    jobs:
        Worker process count. ``1`` (default) runs units inline — the
        reference execution mode the parallel path must match exactly.
    cache:
        Optional :class:`~repro.runner.cache.ResultCache`. Hits skip
        execution entirely; misses are stored after execution.
    timeout:
        Default per-unit wall-clock budget (seconds) for
        :meth:`run_outcomes`. Setting a timeout forces pool execution even
        with ``jobs=1`` — an inline unit cannot be preempted.
    retries:
        Default extra attempts :meth:`run_outcomes` grants a unit whose
        execution raised (timeouts are never retried: a hang is assumed
        deterministic and each retry would cost a full timeout).

    Attributes
    ----------
    cache_hits / executed:
        Per-runner counters across every run, used by the benchmarks to
        prove a warm rerun did no simulation work.
    retried / unit_timeouts / pool_respawns:
        Resilience counters: granted retries, pool kills due to per-unit
        timeouts, and unattributable worker-death respawns.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
        max_pool_respawns: int = DEFAULT_MAX_POOL_RESPAWNS,
    ) -> None:
        if jobs < 1:
            raise RunnerError(f"jobs must be >= 1, got {jobs}")
        if timeout is not None and timeout <= 0:
            raise RunnerError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise RunnerError(f"retries must be >= 0, got {retries}")
        self.jobs = int(jobs)
        self.cache = cache
        self.timeout = timeout
        self.retries = int(retries)
        self.max_pool_respawns = int(max_pool_respawns)
        self.cache_hits = 0
        self.executed = 0
        self.retried = 0
        self.unit_timeouts = 0
        self.pool_respawns = 0

    # ------------------------------------------------------------------
    # Strict execution (experiments): first failure raises
    # ------------------------------------------------------------------
    def run(self, units: Sequence[RunUnit]) -> List[Any]:
        """Execute every unit; results align index-for-index with ``units``.

        Strict mode: the first failure raises :class:`RunnerError` after
        cancelling every not-yet-started unit — no point simulating the
        rest of a figure whose experiment code is broken.
        """
        units = list(units)
        results: List[Any] = [None] * len(units)
        pending: List[int] = []
        for index, unit in enumerate(units):
            if self.cache is not None:
                hit, value = self.cache.get(unit)
                if hit:
                    results[index] = value
                    self.cache_hits += 1
                    continue
            pending.append(index)

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                computed = [self._execute(units[index]) for index in pending]
            else:
                computed = self._execute_pool([units[index] for index in pending])
            for index, value in zip(pending, computed):
                results[index] = value
                self.executed += 1
                if self.cache is not None:
                    self.cache.put(units[index], value)
        return results

    def run_one(self, unit: RunUnit) -> Any:
        return self.run([unit])[0]

    # ------------------------------------------------------------------
    # Resilient execution (campaigns): every unit gets an outcome
    # ------------------------------------------------------------------
    def run_outcomes(
        self,
        units: Sequence[RunUnit],
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
    ) -> List[UnitOutcome]:
        """Execute every unit; one :class:`UnitOutcome` per unit, in order.

        Never raises for unit failures (only for ``KeyboardInterrupt`` and
        programming errors in the runner itself). Successful results are
        cached the moment they complete, so an interrupted batch re-run
        resumes from its checkpoint: cached units come back instantly and
        only the unfinished ones execute again.
        """
        timeout = self.timeout if timeout is None else timeout
        retries = self.retries if retries is None else retries
        if timeout is not None and timeout <= 0:
            raise RunnerError(f"timeout must be positive, got {timeout}")
        units = list(units)
        outcomes: List[Optional[UnitOutcome]] = [None] * len(units)
        pending: List[int] = []
        for index, unit in enumerate(units):
            if self.cache is not None:
                hit, value = self.cache.get(unit)
                if hit:
                    outcomes[index] = UnitOutcome(unit, "ok", value=value, cached=True)
                    self.cache_hits += 1
                    continue
            pending.append(index)

        if pending:
            if timeout is None and (self.jobs == 1 or len(pending) == 1):
                for index in pending:
                    outcomes[index] = self._attempt_inline(units[index], retries)
            else:
                self._run_resilient(units, outcomes, pending, timeout, retries)
        return outcomes  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Internals — strict
    # ------------------------------------------------------------------
    @staticmethod
    def _execute(unit: RunUnit) -> Any:
        try:
            return execute_unit(unit)
        except RunnerError:
            raise
        except Exception as exc:
            raise RunnerError(f"unit {unit.key} failed: {exc}") from exc

    def _execute_pool(self, units: List[RunUnit]) -> List[Any]:
        workers = min(self.jobs, len(units))
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            # Submission order == input order; gathering each future in that
            # same order makes the merge independent of completion order.
            futures = [pool.submit(execute_unit, unit) for unit in units]
            computed: List[Any] = []
            for unit, future in zip(units, futures):
                try:
                    computed.append(future.result())
                except RunnerError:
                    raise
                except Exception as exc:
                    raise RunnerError(f"unit {unit.key} failed in worker: {exc}") from exc
        except BaseException:
            # Strict mode stops at the first failure; drop everything that
            # has not started instead of simulating doomed siblings.
            for future in futures:
                future.cancel()
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=True)
        return computed

    # ------------------------------------------------------------------
    # Internals — resilient
    # ------------------------------------------------------------------
    def _attempt_inline(self, unit: RunUnit, retries: int) -> UnitOutcome:
        attempts = 0
        while True:
            attempts += 1
            start = time.monotonic()
            try:
                value = execute_unit(unit)
            except KeyboardInterrupt:
                raise
            except BaseException as exc:
                if attempts <= retries:
                    self.retried += 1
                    continue
                return UnitOutcome(
                    unit, "error",
                    error=self._render_error(exc),
                    attempts=attempts,
                    duration=time.monotonic() - start,
                )
            return self._complete(unit, value, attempts, time.monotonic() - start)

    def _complete(
        self, unit: RunUnit, value: Any, attempts: int, duration: float
    ) -> UnitOutcome:
        self.executed += 1
        if self.cache is not None:
            self.cache.put(unit, value)  # checkpoint as results land
        return UnitOutcome(unit, "ok", value=value, attempts=attempts, duration=duration)

    @staticmethod
    def _render_error(exc: BaseException) -> str:
        return "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ).strip()

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Forcibly stop a pool whose workers may be hung or dead."""
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.terminate()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _run_resilient(
        self,
        units: List[RunUnit],
        outcomes: List[Optional[UnitOutcome]],
        pending: List[int],
        timeout: Optional[float],
        retries: int,
    ) -> None:
        work = deque(_WorkItem(index) for index in pending)
        respawn_budget = self.max_pool_respawns
        while work:
            batch = list(work)
            work.clear()
            workers = min(self.jobs, len(batch))
            lost, broken = self._run_batch(
                units, outcomes, batch, work, timeout, retries, workers
            )
            if not broken:
                work.extend(lost)  # siblings of a timed-out unit: rerun normally
                continue
            # An unattributable worker death: some unit in `lost` (probably)
            # killed its process. Re-run them one-in-flight so the next
            # death indicts the unit that caused it.
            self.pool_respawns += 1
            if respawn_budget <= 0:
                for item in lost + list(work):
                    outcomes[item.index] = UnitOutcome(
                        units[item.index], "error",
                        error=(
                            "worker pool kept breaking "
                            f"(gave up after {self.pool_respawns} respawns)"
                        ),
                        attempts=item.attempts,
                    )
                work.clear()
                return
            respawn_budget -= 1
            for item in lost:
                sub_lost, _ = self._run_batch(
                    units, outcomes, [item], work, timeout, retries, workers=1
                )
                work.extend(sub_lost)  # single-in-flight: only timeout losses

    def _run_batch(
        self,
        units: List[RunUnit],
        outcomes: List[Optional[UnitOutcome]],
        batch: List[_WorkItem],
        work: "deque[_WorkItem]",
        timeout: Optional[float],
        retries: int,
        workers: int,
    ) -> Tuple[List[_WorkItem], bool]:
        """Run one submission wave; returns (lost work items, pool broke?).

        ``lost`` items were in flight when the pool had to be killed and
        carry no verdict; the caller decides how to re-run them. ``broken``
        is True only for *unattributable* worker deaths (more than one unit
        in flight) — with a single unit in flight, a death is the unit's
        own error and is recorded directly.
        """
        pool = ProcessPoolExecutor(max_workers=workers)
        lost: List[_WorkItem] = []
        broken = False
        dead = False
        futures = []
        try:
            for item in batch:
                futures.append((pool.submit(execute_unit, units[item.index]), item))
        except BrokenExecutor:
            self._kill_pool(pool)
            return batch, len(batch) > 1
        try:
            for future, item in futures:
                index = item.index
                unit = units[index]
                if dead:
                    # The pool is gone (timeout kill or worker death). A
                    # sibling that still managed a clean result keeps it;
                    # everything else is lost and re-run by the caller.
                    value = _salvage(future)
                    if value is _LOST:
                        lost.append(item)
                    else:
                        outcomes[index] = self._complete(
                            unit, value, item.attempts + 1, 0.0
                        )
                    continue
                start = time.monotonic()
                try:
                    value = future.result(timeout=timeout)
                except FutureTimeoutError:
                    self.unit_timeouts += 1
                    outcomes[index] = UnitOutcome(
                        unit, "timeout",
                        error=(
                            f"exceeded the per-unit timeout of {timeout:g}s; "
                            "its worker process was terminated"
                        ),
                        attempts=item.attempts + 1,
                        duration=time.monotonic() - start,
                    )
                    self._kill_pool(pool)
                    dead = True
                except BrokenExecutor:
                    self._kill_pool(pool)
                    dead = True
                    if len(futures) == 1:
                        outcomes[index] = UnitOutcome(
                            unit, "error",
                            error=(
                                "worker process died while executing this unit "
                                "(BrokenProcessPool — crash, os._exit or OOM kill)"
                            ),
                            attempts=item.attempts + 1,
                        )
                    else:
                        broken = True
                        lost.append(item)
                except KeyboardInterrupt:
                    self._kill_pool(pool)
                    raise
                except Exception as exc:
                    item.attempts += 1
                    if item.attempts <= retries:
                        self.retried += 1
                        work.append(item)
                    else:
                        outcomes[index] = UnitOutcome(
                            unit, "error",
                            error=self._render_error(exc),
                            attempts=item.attempts,
                            duration=time.monotonic() - start,
                        )
                else:
                    outcomes[index] = self._complete(
                        unit, value, item.attempts + 1, time.monotonic() - start
                    )
        finally:
            if not dead:
                pool.shutdown(wait=True)
        return lost, broken

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ParallelRunner jobs={self.jobs} cache={self.cache!r} "
            f"hits={self.cache_hits} executed={self.executed} "
            f"retried={self.retried} timeouts={self.unit_timeouts} "
            f"respawns={self.pool_respawns}>"
        )
