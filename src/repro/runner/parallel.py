"""Process-pool fan-out with deterministic merge.

``ParallelRunner.run(units)`` returns one result per unit **in input
order**, never completion order — so an experiment assembled from the
returned list is bit-identical whether it ran serially, on one worker, or
on sixteen. ``jobs=1`` executes inline in the calling process (no pool, no
pickling of results), which is also the default every experiment uses when
no runner is passed; the parallel path exists purely to cut wall-clock.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, List, Optional, Sequence

from repro.errors import RunnerError
from repro.runner.cache import ResultCache
from repro.runner.units import RunUnit, execute_unit


class ParallelRunner:
    """Executes :class:`RunUnit` batches, optionally caching results.

    Parameters
    ----------
    jobs:
        Worker process count. ``1`` (default) runs units inline — the
        reference execution mode the parallel path must match exactly.
    cache:
        Optional :class:`~repro.runner.cache.ResultCache`. Hits skip
        execution entirely; misses are stored after execution.

    Attributes
    ----------
    cache_hits / executed:
        Per-runner counters across every :meth:`run` call, used by the
        benchmarks to prove a warm rerun did no simulation work.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None) -> None:
        if jobs < 1:
            raise RunnerError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.cache = cache
        self.cache_hits = 0
        self.executed = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, units: Sequence[RunUnit]) -> List[Any]:
        """Execute every unit; results align index-for-index with ``units``."""
        units = list(units)
        results: List[Any] = [None] * len(units)
        pending: List[int] = []
        for index, unit in enumerate(units):
            if self.cache is not None:
                hit, value = self.cache.get(unit)
                if hit:
                    results[index] = value
                    self.cache_hits += 1
                    continue
            pending.append(index)

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                computed = [self._execute(units[index]) for index in pending]
            else:
                computed = self._execute_pool([units[index] for index in pending])
            for index, value in zip(pending, computed):
                results[index] = value
                self.executed += 1
                if self.cache is not None:
                    self.cache.put(units[index], value)
        return results

    def run_one(self, unit: RunUnit) -> Any:
        return self.run([unit])[0]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _execute(unit: RunUnit) -> Any:
        try:
            return execute_unit(unit)
        except RunnerError:
            raise
        except Exception as exc:
            raise RunnerError(f"unit {unit.key} failed: {exc}") from exc

    def _execute_pool(self, units: List[RunUnit]) -> List[Any]:
        workers = min(self.jobs, len(units))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # Submission order == input order; gathering each future in that
            # same order makes the merge independent of completion order.
            futures = [pool.submit(execute_unit, unit) for unit in units]
            computed: List[Any] = []
            for unit, future in zip(units, futures):
                try:
                    computed.append(future.result())
                except RunnerError:
                    raise
                except Exception as exc:
                    raise RunnerError(f"unit {unit.key} failed in worker: {exc}") from exc
        return computed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ParallelRunner jobs={self.jobs} cache={self.cache!r} "
            f"hits={self.cache_hits} executed={self.executed}>"
        )
