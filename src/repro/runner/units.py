"""The unit of schedulable work: one ``(experiment, params, seed)`` triple.

Experiments declare their independent simulation runs as :class:`RunUnit`
values — a picklable description of *what* to compute, not the computation
itself — and hand the list to a runner. Keeping units declarative is what
makes them safe to ship to worker processes and to hash into cache keys.

A unit's ``fn`` is a ``"module.path:callable"`` string rather than a bare
function object so that the description pickles cheaply and resolves
identically in every worker, whatever the multiprocessing start method.
Unit functions must be module-level callables accepting keyword arguments
plus ``seed``, and must return a picklable payload (plain dicts of floats
and lists by convention).
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from repro._version import __version__
from repro.errors import RunnerError


def _canonical(value: Any) -> Any:
    """Reduce a parameter value to a JSON-stable form for hashing."""
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (str, int, float)):
        return value
    raise RunnerError(
        f"unit parameter {value!r} ({type(value).__name__}) is not "
        "cache-hashable; pass primitives and resolve objects inside the unit"
    )


@dataclass(frozen=True)
class RunUnit:
    """One independent simulation run, described declaratively.

    Attributes
    ----------
    experiment:
        Scenario family this unit belongs to (e.g. ``"fig1-cca"``). Part of
        the cache key, so two experiments that share a unit function *and*
        a scenario name share cached results.
    fn:
        ``"module.path:callable"`` locating the unit function.
    params:
        Sorted ``(name, value)`` pairs passed to the function as kwargs.
    seed:
        Scenario seed, forwarded as the ``seed`` keyword.
    """

    experiment: str
    fn: str
    params: Tuple[Tuple[str, Any], ...] = ()
    seed: int = 0

    @classmethod
    def make(cls, experiment: str, fn: str, seed: int = 0, **params: Any) -> "RunUnit":
        """Build a unit; keyword order does not affect identity."""
        return cls(
            experiment=experiment,
            fn=fn,
            params=tuple(sorted(params.items())),
            seed=seed,
        )

    @property
    def kwargs(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def key(self) -> str:
        """Human-readable identity, used for ordering and error messages."""
        rendered = ",".join(f"{name}={value}" for name, value in self.params)
        return f"{self.experiment}({rendered})#seed{self.seed}"

    def cache_token(self, version: str = __version__) -> str:
        """Content hash over everything that determines this unit's output.

        The schema is ``sha256(json({experiment, fn, params, seed,
        version}))`` — bump the package version (or change any field) and
        previously cached results silently stop matching.
        """
        try:
            payload = json.dumps(
                {
                    "experiment": self.experiment,
                    "fn": self.fn,
                    "params": _canonical(dict(self.params)),
                    "seed": self.seed,
                    "version": version,
                },
                sort_keys=True,
                separators=(",", ":"),
            )
        except (TypeError, ValueError) as exc:
            raise RunnerError(f"cannot hash parameters of {self.key}") from exc
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def resolve_fn(path: str) -> Callable[..., Any]:
    """Import and return the callable behind a ``module:attr`` path."""
    module_name, _, attr = path.partition(":")
    if not module_name or not attr:
        raise RunnerError(f"unit fn must look like 'pkg.module:callable', got {path!r}")
    try:
        module = importlib.import_module(module_name)
        fn = getattr(module, attr)
    except (ImportError, AttributeError) as exc:
        raise RunnerError(f"cannot resolve unit fn {path!r}") from exc
    if not callable(fn):
        raise RunnerError(f"unit fn {path!r} resolved to non-callable {fn!r}")
    return fn


def execute_unit(unit: RunUnit) -> Any:
    """Run one unit in the current process and return its payload.

    This is the function worker processes execute; it must stay module-level
    and importable for every multiprocessing start method.
    """
    fn = resolve_fn(unit.fn)
    return fn(seed=unit.seed, **unit.kwargs)


def probe_unit(value: float = 0.0, seed: int = 0) -> Dict[str, float]:
    """Trivial deterministic unit used by tests and CI smoke runs."""
    return {"value": 2.0 * float(value) + seed, "events": 1}


# ----------------------------------------------------------------------
# Failure-mode probe units. These exist so the runner's resilience paths
# (per-unit timeouts, BrokenProcessPool recovery, retries) can be exercised
# by real worker processes in tests, not just by mocks. They must stay
# module-level and importable, like every unit function.
# ----------------------------------------------------------------------

def error_unit(message: str = "probe failure", seed: int = 0) -> None:
    """Always raises — the predictable 'unit with a bug'."""
    raise ValueError(f"{message} (seed={seed})")


def crash_unit(exit_code: int = 13, seed: int = 0) -> None:
    """Kills the worker process outright, as a segfault or OOM kill would.

    ``os._exit`` skips interpreter teardown, so the pool sees the process
    vanish (BrokenProcessPool), not an exception.
    """
    import os

    os._exit(exit_code)


def sleep_unit(duration: float = 3600.0, seed: int = 0) -> Dict[str, float]:
    """Sleeps ``duration`` seconds — the 'hung simulation' stand-in."""
    import time

    time.sleep(duration)
    return {"slept": duration, "seed": seed}


def flaky_unit(marker: str, fail_times: int = 1, seed: int = 0) -> Dict[str, int]:
    """Fails its first ``fail_times`` executions, then succeeds.

    ``marker`` names a scratch file used as a cross-process attempt counter
    (worker processes share no memory), letting tests exercise the runner's
    bounded-retry path with genuine process-pool executions.
    """
    from pathlib import Path

    path = Path(marker)
    try:
        attempts = int(path.read_text())
    except (OSError, ValueError):
        attempts = 0
    attempts += 1
    path.write_text(str(attempts))
    if attempts <= fail_times:
        raise RuntimeError(f"flaky failure {attempts}/{fail_times} (seed={seed})")
    return {"attempts": attempts, "seed": seed}
