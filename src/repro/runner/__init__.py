"""Parallel experiment runner: units, process-pool fan-out, result cache.

Every paper artifact decomposes into independent ``(experiment, params,
seed)`` simulation units. This package executes such unit batches — inline,
or fanned out over worker processes — with a deterministic input-order
merge, and optionally memoizes each unit's payload in a content-addressed
on-disk cache so repeated CLI/benchmark runs skip already-computed work.

Quickstart::

    from repro.runner import ParallelRunner, ResultCache
    from repro.experiments.fig1 import run_fig1a

    runner = ParallelRunner(jobs=4, cache=ResultCache())
    result = run_fig1a(runner=runner)   # identical values to a serial run

Guarantees:

* **Determinism** — results are merged in unit order, never completion
  order; ``jobs=N`` and a warm cache reproduce ``jobs=1`` bit-for-bit.
* **Cache safety** — keys hash experiment name, unit function, params,
  seed, and package version; damaged cache files read as misses.
"""

from repro.runner.cache import CACHE_DIR_ENV, ResultCache, default_cache_dir
from repro.runner.parallel import ParallelRunner, UnitOutcome
from repro.runner.units import RunUnit, execute_unit, probe_unit, resolve_fn

__all__ = [
    "CACHE_DIR_ENV",
    "ParallelRunner",
    "ResultCache",
    "RunUnit",
    "UnitOutcome",
    "default_cache_dir",
    "execute_unit",
    "probe_unit",
    "resolve_fn",
]
