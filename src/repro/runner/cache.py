"""Content-addressed on-disk cache for unit results.

Layout: ``<root>/<token[:2]>/<token>.pkl`` where ``token`` is
:meth:`repro.runner.units.RunUnit.cache_token` — a sha256 over experiment
name, unit function path, parameters, seed, and package version. Files are
self-verifying (magic header + payload digest) and written atomically, so a
corrupted, truncated, or foreign file is always treated as a miss, never an
error; concurrent writers at worst redo work.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional, Tuple, Union

from repro.runner.units import RunUnit

#: File format tag; bump when the on-disk layout changes.
_MAGIC = b"RRC1"
_DIGEST_BYTES = 32

#: Environment override for where results land (tests point this at tmp).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


class ResultCache:
    """Pickle store keyed by unit content hashes.

    ``hits`` / ``misses`` count lookups since construction; ``stores`` counts
    successful writes; ``corrupt`` counts blobs that failed verification and
    were quarantined. All methods are best-effort: I/O failures degrade to
    cache misses (reads) or dropped entries (writes) rather than exceptions,
    because a cache must never make a correct run fail.

    A blob that exists but fails verification (bad magic, digest mismatch,
    unpicklable payload) is *quarantined* — renamed to ``<token>.corrupt``,
    or unlinked if the rename fails — so the recomputed result can be stored
    under the original name instead of colliding with the damaged file on
    every subsequent run, and so the damaged bytes remain on disk for
    post-mortem instead of silently re-reading as a miss forever.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    def path_for(self, unit: RunUnit) -> Path:
        token = unit.cache_token()
        return self.root / token[:2] / f"{token}.pkl"

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, unit: RunUnit) -> Tuple[bool, Any]:
        """``(True, value)`` on a verified hit, else ``(False, None)``.

        A blob that fails verification counts as a miss *and* is moved out
        of the way (see class docstring) so it cannot shadow the slot.
        """
        path = self.path_for(unit)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            return False, None
        value = _decode(blob)
        if value is _INVALID:
            self.misses += 1
            self.corrupt += 1
            self._quarantine(path)
            return False, None
        self.hits += 1
        return True, value

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Rename a damaged blob aside (or unlink it if the rename fails)."""
        try:
            path.replace(path.with_suffix(".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def put(self, unit: RunUnit, value: Any) -> Optional[Path]:
        """Atomically persist ``value``; returns the path or ``None``."""
        path = self.path_for(unit)
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            blob = _MAGIC + hashlib.sha256(payload).digest() + payload
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=path.name, suffix=".tmp", dir=path.parent
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            return None
        self.stores += 1
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResultCache {self.root} hits={self.hits} misses={self.misses} "
            f"stores={self.stores}>"
        )


class _Invalid:
    __slots__ = ()


#: Sentinel distinguishing "decoded None" from "undecodable blob".
_INVALID = _Invalid()


def _decode(blob: bytes) -> Any:
    """Verify and unpickle a cache blob; ``_INVALID`` on any defect."""
    header = len(_MAGIC) + _DIGEST_BYTES
    if len(blob) < header or blob[: len(_MAGIC)] != _MAGIC:
        return _INVALID
    digest = blob[len(_MAGIC) : header]
    payload = blob[header:]
    if hashlib.sha256(payload).digest() != digest:
        return _INVALID
    try:
        return pickle.loads(payload)
    except Exception:
        return _INVALID
