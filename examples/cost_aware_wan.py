#!/usr/bin/env python
"""Latency vs money on the WAN: fiber + a priced cISP channel (§3.1).

Small RPCs run over conventional fiber (40 ms RTT, free) next to a
cISP-style microwave channel (8 ms RTT, billed per byte). The cost-aware
policy spends budget only where a packet's delivery-time saving justifies
its price; sweeping willingness-to-pay traces the latency/cost frontier.

Run:  python examples/cost_aware_wan.py
"""

from repro.core.api import HvcNetwork
from repro.core.metrics import Cdf
from repro.net.hvc import cisp_spec, fiber_wan_spec
from repro.steering.cost import CostAwareSteerer
from repro.transport import next_flow_id
from repro.transport.connection import Connection
from repro.units import kb, to_ms

RPC_COUNT = 50


def run(willingness: float) -> None:
    steerer = CostAwareSteerer(
        budget_per_s=0.05, burst=0.2, max_price_per_second_saved=willingness
    )
    net = HvcNetwork([fiber_wan_spec(), cisp_spec()], steering=steerer, seed=3)

    latencies = []
    state = {"started": 0.0}
    flow = next_flow_id()

    def on_reply(receipt):
        latencies.append(net.now - state["started"])
        issue()

    client = Connection(net.sim, net.client, flow, cc="cubic", on_message=on_reply)

    def on_request(receipt):
        server.send_message(kb(4), message_id=receipt.message_id + 10_000)

    server = Connection(net.sim, net.server, flow, cc="cubic", on_message=on_request)

    def issue():
        if len(latencies) >= RPC_COUNT:
            return
        state["started"] = net.now
        client.send_message(300, message_id=len(latencies))

    issue()
    while len(latencies) < RPC_COUNT and net.sim.pending_events and net.now < 120:
        net.run(until=net.now + 1.0)

    cdf = Cdf(latencies)
    print(f"willingness ${willingness:6.2f}/s-saved: "
          f"p50 {to_ms(cdf.median):6.1f} ms, p95 {to_ms(cdf.percentile(95)):6.1f} ms, "
          f"spent ${net.total_cost():.4f}")


def main() -> None:
    print(f"{RPC_COUNT} RPCs (300 B request / 4 kB reply), fiber vs priced cISP\n")
    for willingness in (0.0, 0.05, 0.5, 10.0):
        run(willingness)
    print("\nhigher willingness-to-pay buys down the latency tail; a zero "
          "budget degrades gracefully to fiber-only.")


if __name__ == "__main__":
    main()
