#!/usr/bin/env python
"""Real-time SVC video over a degrading 5G link (the Fig. 2 scenario).

Streams 20 seconds of 3-layer SVC video (0.4/4.1/7.5 Mbps at 30 fps) over
a trace-driven mmWave channel that suffers blockage outages while driving,
paired with URLLC. Compares eMBB-only, DChannel, and cross-layer priority
steering on frame latency and quality.

Run:  python examples/realtime_video.py
"""

from repro.experiments.fig2 import run_fig2_cell
from repro.units import to_ms

DURATION = 20.0


def main() -> None:
    print(f"{DURATION:.0f} s of SVC video over 5G mmWave (driving) + URLLC\n")
    print(f"{'scheme':12s} {'p50 lat':>9s} {'p95 lat':>9s} {'max lat':>9s} "
          f"{'mean SSIM':>10s} {'frames':>7s}")
    for scheme in ("embb-only", "dchannel", "priority"):
        cell = run_fig2_cell("5g-mmwave-driving", scheme, duration=DURATION)
        latency = cell.latency_cdf()
        ssim = cell.ssim_cdf()
        print(f"{scheme:12s} {to_ms(latency.median):8.1f}ms "
              f"{to_ms(latency.percentile(95)):8.1f}ms "
              f"{to_ms(latency.max):8.1f}ms "
              f"{ssim.mean:10.3f} {len(cell.frames):7d}")
    print("\npriority steering pins the base layer (layer 0) to URLLC: frames "
          "stay timely through blockages at a small quality cost.")


if __name__ == "__main__":
    main()
