#!/usr/bin/env python
"""Web page loads with competing background flows (the Table 1 scenario).

Loads a small synthetic page sample over trace-driven 5G Lowband eMBB +
URLLC while two background flows continuously upload/download JSON, and
compares steering policies on mean page load time.

Run:  python examples/web_browsing.py
"""

from repro.apps.web.corpus import generate_corpus
from repro.experiments.table1 import run_table1_cell
from repro.units import to_ms

PAGES = 6


def main() -> None:
    pages = generate_corpus(count=PAGES, seed=0)
    print(f"{PAGES} synthetic pages over 5G Lowband (driving) + URLLC, "
          "with 2 background flows\n")
    baseline = None
    for policy in ("embb-only", "dchannel", "dchannel+flowprio"):
        plts = run_table1_cell("driving", policy, pages=pages)
        mean_ms = to_ms(sum(plts) / len(plts))
        if baseline is None:
            baseline = mean_ms
            note = "(baseline)"
        else:
            note = f"({100 * (1 - mean_ms / baseline):.1f}% faster)"
        print(f"{policy:20s} mean PLT {mean_ms:8.1f} ms  {note}")
    print("\n'dchannel+flowprio' additionally bars the background flows from "
          "URLLC, so page traffic gets the whole low-latency channel.")


if __name__ == "__main__":
    main()
