#!/usr/bin/env python
"""Cloud gaming over a degrading 5G link (the paper's motivating workload).

A 60 Hz input→render→frame loop (30 Mbps stream) runs over trace-driven 5G
Lowband eMBB while driving, paired with URLLC. Compares steering policies
on motion-to-photon latency and the fraction of frames inside the 100 ms
cloud-gaming deadline.

Run:  python examples/cloud_gaming.py
"""

from repro.apps.xr import CLOUD_GAMING_DEADLINE, run_xr_session
from repro.core.api import HvcNetwork
from repro.net.hvc import traced_embb_spec, urllc_spec
from repro.steering.single import SingleChannelSteerer
from repro.traces.catalog import get_trace
from repro.units import to_ms

DURATION = 15.0


def build(steering):
    trace = get_trace("5g-lowband-driving", seed=5)
    embb = traced_embb_spec(trace)
    embb.name = "embb"
    return HvcNetwork([embb, urllc_spec()], steering=steering, seed=1)


def main() -> None:
    print(f"{DURATION:.0f} s of 60 Hz cloud gaming (30 Mbps) over 5G Lowband "
          f"(driving) + URLLC; deadline {to_ms(CLOUD_GAMING_DEADLINE):.0f} ms\n")
    policies = {
        "embb-only": SingleChannelSteerer(channel_name="embb"),
        "dchannel": "dchannel",
        "transport-aware": "transport-aware",
    }
    for label, steering in policies.items():
        result = run_xr_session(build(steering), duration=DURATION)
        cdf = result.latency_cdf()
        print(f"{label:16s} p50 {to_ms(cdf.median):6.1f} ms | "
              f"p95 {to_ms(cdf.percentile(95)):7.1f} ms | "
              f"on-time {100 * result.on_time_fraction:5.1f}%")
    print("\ninputs and frame tails ride URLLC under the steered policies, "
          "keeping the loop inside its deadline through eMBB latency spikes.")


if __name__ == "__main__":
    main()
