#!/usr/bin/env python
"""WAN path diversity as HVCs (§2.3: SCION / cISP / LEO).

A SCION-like host learns three WAN paths with very different properties —
terrestrial fiber (wide, 40 ms), a LEO constellation (lower latency,
narrower, lossy), and a cISP microwave path (8 ms, narrow, billed per
byte) — and treats them as heterogeneous virtual channels. The same RPC
workload runs under single-path pins and under transport-aware steering
across all three.

Run:  python examples/wan_path_diversity.py
"""

from repro.core.api import HvcNetwork
from repro.core.metrics import Cdf
from repro.net.hvc import cisp_spec, fiber_wan_spec, leo_spec
from repro.steering.single import SingleChannelSteerer
from repro.transport import next_flow_id
from repro.transport.connection import Connection
from repro.units import kb, to_ms

RPC_COUNT = 60


def run(label, steering):
    net = HvcNetwork(
        [fiber_wan_spec(), leo_spec(), cisp_spec()], steering=steering, seed=11
    )
    # A concurrent bulk transfer contends for the paths: steering must keep
    # it on fiber while the RPCs get cISP.
    from repro.apps.bulk import BulkTransfer

    bulk = BulkTransfer(net, cc="cubic")
    latencies = []
    state = {"started": 0.0}
    flow = next_flow_id()

    def on_reply(receipt):
        latencies.append(net.now - state["started"])
        issue()

    client = Connection(net.sim, net.client, flow, cc="cubic", on_message=on_reply)

    def on_request(receipt):
        server.send_message(kb(8), message_id=receipt.message_id + 10_000)

    server = Connection(net.sim, net.server, flow, cc="cubic", on_message=on_request)

    def issue():
        if len(latencies) >= RPC_COUNT:
            return
        state["started"] = net.now
        client.send_message(400, message_id=len(latencies))

    issue()
    while len(latencies) < RPC_COUNT and net.sim.pending_events and net.now < 120:
        net.run(until=net.now + 1.0)
    cdf = Cdf(latencies)
    cost = net.total_cost()
    from repro.units import to_mbps

    bulk_mbps = to_mbps(bulk.mean_throughput_bps(start=1.0, end=net.now))
    print(f"{label:18s} rpc p50 {to_ms(cdf.median):6.1f} ms | "
          f"p95 {to_ms(cdf.percentile(95)):7.1f} ms | "
          f"bulk {bulk_mbps:6.1f} Mbps | spend ${cost:.4f}")


def main() -> None:
    print(f"{RPC_COUNT} RPCs (400 B request / 8 kB reply) + a bulk flow over "
          "three WAN paths:\n"
          "  fiber 200 Mbps/40 ms · LEO 50 Mbps/25 ms (1% loss) · "
          "cISP 10 Mbps/8 ms ($/byte)\n")
    run("fiber only", SingleChannelSteerer(channel_name="fiber-wan"))
    run("leo only", SingleChannelSteerer(channel_name="leo"))
    run("cisp only", SingleChannelSteerer(channel_name="cisp"))
    run("steered (all 3)", "transport-aware")
    print("\npath-aware steering gets cISP's latency for the small packets "
          "that matter, fiber's bandwidth for the rest, and shrugs off "
          "LEO's loss.")


if __name__ == "__main__":
    main()
