#!/usr/bin/env python
"""Sender adaptation vs cross-layer steering for real-time video.

Two ways to survive a channel that cannot carry the full SVC ladder:

* **adapt at the source** — drop top layers when receiver feedback reports
  lateness (Octopus-style; works even with a single channel);
* **steer across channels** — keep the full ladder and pin layer 0 to
  URLLC (Fig. 2's cross-layer policy; needs an HVC pair).

This example runs both (and their combination) over a squeezed eMBB link
and reports the latency/quality trade each makes.

Run:  python examples/adaptive_video.py
"""

from repro.apps.video.adaptive import (
    AdaptiveVideoSender,
    FeedbackReporter,
    attach_feedback_channel,
)
from repro.apps.video.quality import SsimModel
from repro.apps.video.receiver import VideoReceiver
from repro.apps.video.sender import VideoSender
from repro.apps.video.svc import SvcEncoderModel
from repro.core.api import HvcNetwork
from repro.net.hvc import fixed_embb_spec, urllc_spec
from repro.units import mbps, ms, to_ms

DURATION = 20.0
#: eMBB squeezed below the 12 Mbps ladder.
EMBB_RATE = mbps(8)


def run(label, steering, adaptive):
    channels = [fixed_embb_spec(rate_bps=EMBB_RATE, rtt=ms(40))]
    if steering != "single":
        channels.append(urllc_spec())
    net = HvcNetwork(channels, steering=steering)
    encoder = SvcEncoderModel()
    media = net.open_datagram()
    receiver = VideoReceiver(net.sim, media.server, encoder)
    if adaptive:
        sender = AdaptiveVideoSender(net.sim, media.client, encoder, duration=DURATION)
        feedback = net.open_datagram()
        FeedbackReporter(net.sim, receiver, feedback.server)
        attach_feedback_channel(sender, feedback.client)
    else:
        sender = VideoSender(net.sim, media.client, encoder, duration=DURATION)
    net.run(until=DURATION + 2.0)

    ssim_model = SsimModel()
    decoded = [f for f in receiver.frames if f.decoded]
    latencies = sorted(f.latency for f in decoded)
    ssim = sum(ssim_model.ssim(f.frame_index, f.decoded_layer) for f in decoded) / len(decoded)
    p95 = latencies[int(len(latencies) * 0.95)]
    print(f"{label:22s} p95 latency {to_ms(p95):7.1f} ms | mean SSIM {ssim:.3f} "
          f"| frames {len(decoded)}")


def main() -> None:
    print(f"{DURATION:.0f} s of 12 Mbps SVC video over an {EMBB_RATE / 1e6:.0f} Mbps "
          "eMBB link (optionally + URLLC)\n")
    run("no defense", "single", adaptive=False)
    run("sender adaptation", "single", adaptive=True)
    run("priority steering", "priority", adaptive=False)
    run("both", "priority", adaptive=True)
    print("\nadaptation sacrifices quality to restore timeliness on one "
          "channel; steering keeps the base layer timely without touching "
          "the ladder; combined, the two defenses stack.")


if __name__ == "__main__":
    main()
