#!/usr/bin/env python
"""Quickstart: two HVCs, one flow, three steering policies.

Builds the paper's canonical channel pair — eMBB (60 Mbps, 50 ms RTT) and
URLLC (2 Mbps, 5 ms RTT) — then sends the same 500 kB message under three
steering policies and reports completion time and channel usage.

Run:  python examples/quickstart.py
"""

from repro import HvcNetwork, units
from repro.net.hvc import fixed_embb_spec, urllc_spec


def transfer_once(steering: str) -> None:
    net = HvcNetwork([fixed_embb_spec(), urllc_spec()], steering=steering)

    completed = {}
    pair = net.open_connection(
        cc="cubic",
        on_server_message=lambda receipt: completed.update(at=receipt.completed_at),
    )
    pair.client.send_message(units.kb(500), message_id=1)
    net.run(until=30.0)

    embb, urllc = net.channels
    print(f"policy={steering:12s} done at {completed['at'] * 1e3:8.1f} ms "
          f"| eMBB pkts={embb.uplink.stats.delivered + embb.downlink.stats.delivered:4d} "
          f"| URLLC pkts={urllc.uplink.stats.delivered + urllc.downlink.stats.delivered:4d}")


def main() -> None:
    print("500 kB transfer over eMBB (60 Mbps / 50 ms) + URLLC (2 Mbps / 5 ms)\n")
    for steering in ("single", "dchannel", "transport-aware"):
        transfer_once(steering)
    print("\n'single' uses eMBB alone; the steered policies accelerate the "
          "handshake, ACKs and message tail over URLLC.")


if __name__ == "__main__":
    main()
