#!/usr/bin/env python
"""Wi-Fi 7 MLO: trading bandwidth for reliability by replication (§2.2).

Two Wi-Fi links on different bands, each with bursty (Gilbert–Elliott)
loss. A datagram stream is sent three ways: pinned to one link, sprayed by
minRTT, and replicated across both links. Replication halves usable
bandwidth but survives either link fading.

Run:  python examples/wifi_mlo_reliability.py
"""

from repro.core.api import HvcNetwork
from repro.net.hvc import wifi_mlo_specs
from repro.sim.timers import PeriodicTimer
from repro.steering.redundant import RedundantSteerer
from repro.steering.single import SingleChannelSteerer
from repro.units import kb, to_mbps

DURATION = 15.0
MESSAGE_BYTES = kb(10)
SEND_INTERVAL = 0.005  # 16 Mbps offered


def run(label, steering) -> None:
    net = HvcNetwork(list(wifi_mlo_specs()), steering=steering, seed=7)
    received = []
    pair = net.open_datagram(on_server_message=received.append)
    state = {"sent": 0}

    def send() -> None:
        pair.client.send_message(MESSAGE_BYTES, message_id=state["sent"])
        state["sent"] += 1

    timer = PeriodicTimer(net.sim, SEND_INTERVAL, send, start_delay=0.0)
    net.run(until=DURATION)
    timer.stop()
    net.run(until=DURATION + 1.0)

    delivered = len(received) / max(state["sent"], 1)
    goodput = to_mbps(len(received) * MESSAGE_BYTES * 8 / DURATION)
    print(f"{label:18s} delivered {100 * delivered:5.1f}%  goodput {goodput:6.1f} Mbps")


def main() -> None:
    print("10 kB messages at 16 Mbps over two bursty-loss Wi-Fi MLO links\n")
    run("single-link", SingleChannelSteerer(index=0))
    run("spray (min-rtt)", "min-rtt")
    run("replicate", RedundantSteerer(mode="all"))
    print("\nreplication sacrifices bandwidth headroom for delivery "
          "reliability — the MLO trade-off the paper describes.")


if __name__ == "__main__":
    main()
