#!/usr/bin/env python
"""The §4 design, running: multipath transport with per-channel subflows.

One backlogged bulk connection and one small-RPC connection share
eMBB + URLLC. Compares MPTCP's minRTT scheduler against the paper's
HVC-aware scheduler (bulk pinned to the fat channel, message tails / small
messages / loss repair on URLLC, ACKs returning on URLLC while it has
headroom).

Run:  python examples/multipath_transport.py
"""

from repro.experiments.ablations import _multipath_mixed_workload
from repro.units import to_mbps, to_ms
from repro.core.metrics import Cdf

DURATION = 30.0


def main() -> None:
    print(f"{DURATION:.0f} s of bulk + 2 kB RPCs over eMBB (60 Mbps/50 ms) "
          "+ URLLC (2 Mbps/5 ms), one multipath connection each\n")
    for scheduler in ("minrtt", "hvc"):
        goodput, latencies = _multipath_mixed_workload(scheduler, duration=DURATION)
        cdf = Cdf(latencies)
        print(f"{scheduler:8s} bulk {to_mbps(goodput):5.1f} Mbps | "
              f"rpc p50 {to_ms(cdf.median):6.1f} ms | "
              f"rpc p95 {to_ms(cdf.percentile(95)):6.1f} ms")
    print("\nper-channel subflows keep every congestion controller's RTT "
          "unimodal; the hvc scheduler additionally reserves URLLC for the "
          "bytes an application is actually waiting on.")


if __name__ == "__main__":
    main()
